"""Size estimation for (virtual) XML path indexes.

The advisor's configuration search is a knapsack over index sizes, and
the candidate indexes are virtual -- they do not exist, so their sizes
must be *estimated* from the path statistics, exactly as DB2's design
advisor estimates relational index sizes from column statistics.

The model: the number of entries of an index with pattern ``P`` equals
the number of nodes matched by ``P`` (every matching node contributes
one key); each entry stores the key value (average value width for
VARCHAR, 8 bytes for DOUBLE) plus a record id and slot overhead; entries
are packed into pages at a B-tree fill factor.
"""

from __future__ import annotations

from typing import Optional

from repro.index.definition import IndexDefinition
from repro.storage import pages
from repro.storage.statistics import DatabaseStatistics
from repro.xquery.model import ValueType

#: VARCHAR keys are truncated at this many bytes (mirrors AS SQL VARCHAR(64)).
MAX_VARCHAR_KEY_BYTES = 64.0


def estimate_entry_count(index: IndexDefinition,
                         statistics: DatabaseStatistics) -> int:
    """Number of entries the index would contain.

    DOUBLE indexes only contain nodes whose values cast to a number; we
    approximate that with the per-path numeric counts.
    """
    matched_paths = statistics.paths_matching(index.pattern)
    if index.value_type is ValueType.DOUBLE:
        return sum(statistics.path_stats[p].numeric_count for p in matched_paths)
    return sum(statistics.path_stats[p].node_count for p in matched_paths)


def estimate_key_width(index: IndexDefinition,
                       statistics: DatabaseStatistics) -> float:
    """Average key width in bytes for the index."""
    if index.value_type is ValueType.DOUBLE:
        return float(pages.DOUBLE_KEY_BYTES)
    width = statistics.average_key_width(index.pattern)
    return min(MAX_VARCHAR_KEY_BYTES, max(1.0, width))


def estimate_index_size_bytes(index: IndexDefinition,
                              statistics: DatabaseStatistics) -> float:
    """Estimated on-disk size of the index, in bytes.

    Memoized by index key on ``statistics.size_cache``: the estimate
    depends only on (pattern, value type) and the synopsis, and
    statistics objects are rebuilt rather than mutated when documents
    change, so the memo can never go stale.
    """
    cached = statistics.size_cache.get(index.key)
    if cached is not None:
        return cached
    entries = estimate_entry_count(index, statistics)
    if entries == 0:
        # An index that would contain nothing still costs one page of
        # metadata once created.
        size = float(pages.PAGE_SIZE_BYTES)
    else:
        key_width = estimate_key_width(index, statistics)
        size = pages.index_size_bytes(entries, key_width)
    statistics.size_cache[index.key] = size
    return size


def estimate_index_pages(index: IndexDefinition,
                         statistics: DatabaseStatistics) -> int:
    """Estimated on-disk size of the index, in pages."""
    return pages.bytes_to_pages(estimate_index_size_bytes(index, statistics))


def estimate_configuration_size_bytes(indexes, statistics: DatabaseStatistics) -> float:
    """Total estimated size of a set of index definitions, in bytes."""
    return sum(estimate_index_size_bytes(index, statistics) for index in indexes)


def carry_over_size_estimates(old_statistics: DatabaseStatistics,
                              new_statistics: DatabaseStatistics,
                              is_key_stale) -> int:
    """Seed a fresh statistics object's size memo from its predecessor.

    Statistics snapshots are rebuilt (never mutated) on data change, so
    their size memos start empty.  An index's size estimate depends only
    on the per-path stats its pattern matches -- not on the database
    aggregates -- so every memoized size whose pattern the change did
    not touch (``is_key_stale(key)`` False, see
    :meth:`repro.storage.maintenance.DataChange.affects_index_key`) is
    still exact and can be copied over.  Returns the number of entries
    carried.
    """
    carried = 0
    for key, size in old_statistics.size_cache.items():
        if key not in new_statistics.size_cache and not is_key_stale(key):
            new_statistics.size_cache[key] = size
            carried += 1
    return carried
