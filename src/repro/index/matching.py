"""Index matching: deciding which indexes can answer which predicates.

This is the process the paper couples the advisor to: "index matching,
which is the process that decides which indexes are useful for which
parts of the query, is dependent on the query optimizer implementation".
The rules implemented here mirror DB2's documented restrictions for XML
pattern indexes:

1. *Pattern containment* -- the index pattern must match every node the
   query path can reach, i.e. ``L(query path) ⊆ L(index pattern)``.
   (If the index only covered some of the nodes, using it could miss
   results.)  Containment is decided exactly by
   :func:`repro.xpath.patterns.pattern_contains`.

2. *Type compatibility* -- a DOUBLE index can only answer numeric
   comparisons; a VARCHAR index can only answer string comparisons and
   existence tests.  (DB2 will not use an ``AS SQL DOUBLE`` index for a
   string equality and vice versa, because the index simply does not
   contain the needed keys.)

3. Existence-only predicates can be answered by an index of either type
   on a containing pattern (the index enumerates the nodes with that
   path regardless of key type).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.index.definition import IndexDefinition
from repro.xpath.patterns import pattern_contains
from repro.xquery.model import PathPredicate, ValueType


@dataclass(frozen=True)
class IndexMatch:
    """A successful match between an index and a predicate."""

    index: IndexDefinition
    predicate: PathPredicate
    #: True when the index pattern is exactly the predicate pattern (no
    #: extra nodes indexed); exact matches are the cheapest to scan.
    exact: bool

    def describe(self) -> str:
        kind = "exact" if self.exact else "containing"
        return (f"{self.index.name} ({self.index.pattern.to_text()}) "
                f"{kind}-matches {self.predicate.describe()}")


def _type_compatible(index: IndexDefinition, predicate: PathPredicate) -> bool:
    if predicate.is_existence:
        return True
    if predicate.value_type is ValueType.DOUBLE:
        return index.value_type is ValueType.DOUBLE
    return index.value_type is ValueType.VARCHAR


def index_matches_predicate(index: IndexDefinition,
                            predicate: PathPredicate) -> Optional[IndexMatch]:
    """Return an :class:`IndexMatch` if ``index`` can answer ``predicate``.

    Returns ``None`` when the index is not applicable (pattern does not
    contain the predicate path, or the value types are incompatible).
    """
    if not _type_compatible(index, predicate):
        return None
    if not pattern_contains(index.pattern, predicate.pattern):
        return None
    exact = index.pattern == predicate.pattern or (
        pattern_contains(predicate.pattern, index.pattern))
    return IndexMatch(index=index, predicate=predicate, exact=exact)


def usable_indexes(indexes: Iterable[IndexDefinition],
                   predicate: PathPredicate) -> List[IndexMatch]:
    """All indexes from ``indexes`` that can answer ``predicate``.

    Exact matches are ordered first so a cost model that picks the first
    of equal-cost alternatives prefers the tighter index.
    """
    matches: List[IndexMatch] = []
    for index in indexes:
        match = index_matches_predicate(index, predicate)
        if match is not None:
            matches.append(match)
    matches.sort(key=lambda m: (not m.exact, m.index.pattern.generality_score()))
    return matches
