"""Physical XML path indexes.

A physical index materializes the (key, document id, node id) entries
for every node matched by the index pattern, sorted by key, so the
executor can answer equality and range predicates with binary search
instead of scanning documents.  This is what the demo's last step does:
"review the final recommended index configuration and ... create it.
The actual execution time taken by the queries can then be displayed."
"""

from __future__ import annotations

import bisect
import heapq
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

from repro.faults import guarded_fault_point
from repro.index.definition import IndexDefinition
from repro.storage import pages
from repro.storage.document_store import XmlDatabase
from repro.xmldb.nodes import NodeKind
from repro.xpath.ast import BinaryOp
from repro.xquery.model import ValueType

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.storage.maintenance import CollectionDelta, DocumentDelta


@dataclass(frozen=True)
class IndexEntry:
    """One index entry: key value plus the node's address."""

    key: Union[str, float]
    collection: str
    doc_id: int
    node_id: int


class PhysicalPathIndex:
    """A sorted-array implementation of an XML path/value index.

    Keys are either normalized strings (VARCHAR indexes) or floats
    (DOUBLE indexes).  The structure supports point lookups, range scans
    and full scans, and reports its actual size in bytes and pages.
    """

    def __init__(self, definition: IndexDefinition) -> None:
        if definition.is_virtual:
            raise ValueError(
                f"cannot build a physical structure for virtual index {definition.name!r}")
        self.definition = definition
        self._entries: List[IndexEntry] = []
        self._keys: List[Union[str, float]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def insert(self, key: Union[str, float], collection: str, doc_id: int,
               node_id: int) -> None:
        if self._finalized:
            raise RuntimeError("index already finalized; rebuild to add entries")
        self._entries.append(IndexEntry(key=key, collection=collection,
                                        doc_id=doc_id, node_id=node_id))

    def finalize(self) -> "PhysicalPathIndex":
        """Sort entries by key (then document order) and freeze the index.

        The order is fully canonical -- the collection name breaks the
        (rare) ties between equal keys at the same document/node ids in
        different collections -- so a delta-maintained index and a fresh
        rebuild hold byte-identical entry lists.
        """
        self._entries.sort(key=_entry_order)
        self._keys = [_sort_key(e.key) for e in self._entries]
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # Incremental maintenance (against a finalized index)
    # ------------------------------------------------------------------
    def apply_collection_delta(self, delta: "CollectionDelta") -> int:
        """Maintain the finalized index for one document add/remove.

        Returns the number of entries inserted/deleted.  The resulting
        entry list is byte-identical to rebuilding the index over the
        post-change documents: insertions are merged into the canonical
        (key, doc, node) order, deletions also slide the document ids
        above the removed key down by one (the store reassigns them).
        """
        # Consulted before any mutation: a persistent fault leaves the
        # structure untouched, but the caller cannot know that and must
        # treat the index as unmaintained (rebuild or degrade).
        guarded_fault_point("index.delta_apply")
        if delta.is_add:
            return self.insert_document(delta.collection, delta.document)
        return self.delete_document(delta.collection, delta.document.doc_key)

    def insert_document(self, collection: str,
                        document: "DocumentDelta") -> int:
        """Merge one new document's entries into the finalized index."""
        self._require_finalized()
        if (self.definition.collection is not None
                and collection != self.definition.collection):
            return 0
        numeric = self.definition.value_type is ValueType.DOUBLE
        added: List[IndexEntry] = []
        for path, nodes in document.path_groups.items():
            if self.definition.pattern.matches(path):
                for node in nodes:
                    entry = _entry_for_node(collection, document.doc_key,
                                            node, numeric)
                    if entry is not None:
                        added.append(entry)
        if not added:
            return 0
        added.sort(key=_entry_order)
        self._entries = list(heapq.merge(self._entries, added, key=_entry_order))
        self._keys = [_sort_key(e.key) for e in self._entries]
        return len(added)

    def delete_document(self, collection: str, doc_key: int) -> int:
        """Delete one document's entries and shift later document ids."""
        self._require_finalized()
        if (self.definition.collection is not None
                and collection != self.definition.collection):
            return 0
        kept: List[IndexEntry] = []
        removed = 0
        changed = False
        for entry in self._entries:
            if entry.collection != collection or entry.doc_id < doc_key:
                kept.append(entry)
            elif entry.doc_id == doc_key:
                removed += 1
                changed = True
            else:
                kept.append(IndexEntry(key=entry.key, collection=collection,
                                       doc_id=entry.doc_id - 1,
                                       node_id=entry.node_id))
                changed = True
        if changed:
            # The shift can perturb tie order against entries of *other*
            # collections sharing a key; the list is near-sorted, so
            # restoring the canonical order is effectively linear.
            kept.sort(key=_entry_order)
            self._entries = kept
            self._keys = [_sort_key(e.key) for e in kept]
        return removed

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[IndexEntry]:
        return list(self._entries)

    def lookup_equal(self, value: Union[str, float]) -> List[IndexEntry]:
        """All entries whose key equals ``value``."""
        self._require_finalized()
        key = _sort_key(self._coerce(value))
        left = bisect.bisect_left(self._keys, key)
        right = bisect.bisect_right(self._keys, key)
        return self._entries[left:right]

    def lookup_range(self, op: BinaryOp, value: Union[str, float]) -> List[IndexEntry]:
        """All entries satisfying ``key <op> value`` for a range operator."""
        self._require_finalized()
        key = _sort_key(self._coerce(value))
        if op is BinaryOp.LT:
            return self._entries[:bisect.bisect_left(self._keys, key)]
        if op is BinaryOp.LE:
            return self._entries[:bisect.bisect_right(self._keys, key)]
        if op is BinaryOp.GT:
            return self._entries[bisect.bisect_right(self._keys, key):]
        if op is BinaryOp.GE:
            return self._entries[bisect.bisect_left(self._keys, key):]
        if op is BinaryOp.EQ:
            return self.lookup_equal(value)
        if op is BinaryOp.NE:
            return [e for e in self._entries if _sort_key(e.key) != key]
        raise ValueError(f"unsupported operator for index lookup: {op}")

    def scan(self) -> List[IndexEntry]:
        """All entries in key order (used for existence predicates)."""
        self._require_finalized()
        return list(self._entries)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> float:
        if self.definition.value_type is ValueType.DOUBLE:
            key_width = float(pages.DOUBLE_KEY_BYTES)
        else:
            total = sum(len(str(e.key)) for e in self._entries)
            key_width = (total / len(self._entries)) if self._entries else 8.0
        return pages.index_size_bytes(len(self._entries), key_width)

    @property
    def size_pages(self) -> int:
        return pages.bytes_to_pages(self.size_bytes)

    # ------------------------------------------------------------------
    def _coerce(self, value: Union[str, float]) -> Union[str, float]:
        if self.definition.value_type is ValueType.DOUBLE:
            return float(value)
        return str(value)

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("index must be finalized before lookups")


def _sort_key(key: Union[str, float]) -> Tuple[int, Union[str, float]]:
    """Keys of mixed types sort numerics before strings, consistently."""
    if isinstance(key, (int, float)) and not isinstance(key, bool):
        return (0, float(key))
    return (1, str(key))


def _entry_order(entry: IndexEntry):
    """The canonical total order of index entries."""
    return (_sort_key(entry.key), entry.doc_id, entry.node_id, entry.collection)


def build_physical_index(definition: IndexDefinition,
                         database: XmlDatabase,
                         use_columnar: Optional[bool] = None
                         ) -> PhysicalPathIndex:
    """Materialize a physical index over the database's documents.

    Every element/attribute node whose simple path is matched by the
    index pattern contributes one entry keyed by its value (direct text
    for elements, attribute value for attributes).  DOUBLE indexes skip
    nodes whose value does not cast, matching DB2 semantics.

    The candidate nodes come from each collection's columnar store
    (:meth:`~repro.storage.columnar.ColumnarStore.iter_strict_pattern_nodes`,
    the default -- one postings walk per matching path) or its
    structural :class:`~repro.storage.path_summary.PathSummary`
    (``use_columnar=False``, the legacy path): either way the pattern is
    matched once against the collection's distinct paths and only the
    nodes on matching paths are visited, instead of re-walking every
    document tree per index build.  Both feed the same
    :func:`_entry_for_node` and the entries are canonically sorted by
    ``finalize``, so the built structures are byte-identical.
    ``use_columnar`` defaults to the ``REPRO_USE_COLUMNAR`` environment
    switch (on unless set to ``"0"``).
    """
    if use_columnar is None:
        use_columnar = os.environ.get("REPRO_USE_COLUMNAR", "1") != "0"
    index = PhysicalPathIndex(definition.as_physical())
    collections = database.collections
    if definition.collection is not None:
        collections = [database.collection(definition.collection)]
    numeric = definition.value_type is ValueType.DOUBLE
    for collection in collections:
        if use_columnar:
            store = collection.columnar_store
            for doc_id, node in store.iter_strict_pattern_nodes(definition.pattern):
                entry = _entry_for_node(collection.name, doc_id, node, numeric)
                if entry is not None:
                    index.insert(entry.key, entry.collection,
                                 entry.doc_id, entry.node_id)
            continue
        summary = collection.path_summary
        for path in summary.paths_matching(definition.pattern):
            for doc_id, nodes in summary.doc_nodes_for_path(path).items():
                for node in nodes:
                    entry = _entry_for_node(collection.name, doc_id, node, numeric)
                    if entry is not None:
                        index.insert(entry.key, entry.collection,
                                     entry.doc_id, entry.node_id)
    # Consulted before finalize: a persistent fault discards the
    # partially-built structure with the local variable, so a failed
    # build never publishes anything.
    guarded_fault_point("index.build")
    return index.finalize()


def _entry_for_node(collection_name: str, doc_id: int,
                    node, numeric: bool) -> Optional[IndexEntry]:
    """The entry ``node`` contributes, or ``None`` when it is not indexable
    (DOUBLE index and the value does not cast).  Shared by the full build
    and the per-document delta maintenance, so the two cannot diverge."""
    key: Union[str, float, None]
    if node.kind == NodeKind.ATTRIBUTE:
        key = node.double_value() if numeric else node.typed_value()
    else:
        value = _direct_text(node)
        if numeric:
            key = node.double_value() if value else None
        else:
            key = " ".join(value.split())
    if key is None:
        return None
    return IndexEntry(key=key, collection=collection_name, doc_id=doc_id,
                      node_id=node.node_id)


def _direct_text(element) -> str:
    return "".join(child.value for child in element.children
                   if child.kind == NodeKind.TEXT).strip()
