"""Export recommendations and analyses as JSON-serializable structures.

The demonstration's GUI shows the recommendation interactively; an
open-source release needs a machine-readable artifact so the
recommendation can be versioned, diffed, and fed into deployment
tooling.  These helpers convert the advisor's result objects into plain
dictionaries (and JSON text) with no library types inside.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.advisor.advisor import Recommendation
from repro.advisor.analysis import QueryCostComparison, RecommendationAnalysis


def index_to_dict(index, size_bytes: Optional[float] = None) -> Dict[str, Any]:
    """One index definition as a plain dictionary."""
    result: Dict[str, Any] = {
        "name": index.name,
        "pattern": index.pattern.to_text(),
        "value_type": index.value_type.value,
        "ddl": index.ddl(),
    }
    if index.collection is not None:
        result["collection"] = index.collection
    if size_bytes is not None:
        result["estimated_size_bytes"] = round(size_bytes, 1)
    return result


def recommendation_to_dict(recommendation: Recommendation) -> Dict[str, Any]:
    """The full recommendation as a nested dictionary."""
    sizes = recommendation.benefit.index_sizes
    return {
        "algorithm": recommendation.search_result.algorithm.value,
        "disk_budget_bytes": recommendation.parameters.disk_budget_bytes,
        "total_size_bytes": round(recommendation.total_size_bytes, 1),
        "base_columnar_bytes": recommendation.base_columnar_bytes,
        "total_benefit": round(recommendation.total_benefit, 3),
        "estimated_improvement_percent": round(recommendation.improvement_percent(), 2),
        "indexes": [index_to_dict(index, sizes.get(index.key))
                    for index in recommendation.configuration],
        "candidates": {
            "basic": len(recommendation.candidates.basic_candidates),
            "generalized": len(recommendation.candidates.generalized_candidates),
            "dag_depth": recommendation.dag.depth(),
            "dag_roots": len(recommendation.dag.roots),
        },
        "queries": [
            {
                "query_id": evaluation.query_id,
                "frequency": evaluation.frequency,
                "cost_without_indexes": round(evaluation.cost_without_indexes, 3),
                "cost_with_configuration": round(evaluation.cost_with_configuration, 3),
                "benefit": round(evaluation.benefit, 3),
            }
            for evaluation in recommendation.benefit.query_evaluations
        ],
        "phase_seconds": {phase: round(seconds, 4)
                          for phase, seconds in recommendation.phase_seconds.items()},
        "search_trace": [step.describe() for step in recommendation.search_result.trace],
    }


def comparison_to_dict(comparison: QueryCostComparison) -> Dict[str, Any]:
    return {
        "query_id": comparison.query_id,
        "cost_no_indexes": round(comparison.cost_no_indexes, 3),
        "cost_recommended": round(comparison.cost_recommended, 3),
        "cost_overtrained": round(comparison.cost_overtrained, 3),
        "speedup_recommended": round(comparison.speedup_recommended, 3),
        "benefit_captured": round(comparison.benefit_captured, 3),
    }


def analysis_to_dict(analysis: RecommendationAnalysis) -> Dict[str, Any]:
    """The Figure 5 analysis as a dictionary (summary + per-query rows)."""
    return {
        "summary": {key: round(value, 3) for key, value in analysis.summary().items()},
        "per_query": [comparison_to_dict(row) for row in analysis.compare_query_costs()],
    }


def recommendation_to_json(recommendation: Recommendation,
                           analysis: Optional[RecommendationAnalysis] = None,
                           indent: int = 2) -> str:
    """JSON text for a recommendation (optionally with its analysis)."""
    payload: Dict[str, Any] = {"recommendation": recommendation_to_dict(recommendation)}
    if analysis is not None:
        payload["analysis"] = analysis_to_dict(analysis)
    return json.dumps(payload, indent=indent, sort_keys=False)
