"""Columnar pre/post scan comparison (shared E13 protocol).

One implementation of the columnar measurement used by three consumers
-- the E13 benchmark (``benchmarks/bench_e13_columnar.py``), the tier-1
``bench_smoke`` guard (``tests/test_bench_smoke.py``), and the
perf-trajectory recorder (``tools/bench_record.py``) -- so the
measurement protocol cannot silently diverge between the guard, the
bench and the recorded numbers.

Protocol: an XMark database is generated at ``scale`` and a
*descendant-heavy* workload of summary-unsafe ``//`` navigation queries
(every shape where a descendant step may match its own context, so the
path summary's loose matching cannot answer it exactly) is executed as
document scans by two executors sharing the database:

* the **columnar** executor (``use_columnar=True``, the default) lowers
  the spines onto :class:`~repro.storage.columnar.ColumnarStore`'s
  pre/post axis engine -- exact descendant-or-self semantics straight
  off the sorted columns, zero per-node tree walks;
* the **interpretive** executor (``use_columnar=False``, the escape
  hatch) finds no summary backing for the unsafe shapes and falls back
  to the per-document :class:`~repro.xpath.evaluator.XPathEvaluator`.

Wall-clock is best-of-``repeats`` per mode; equivalence is byte-exact
per query (result counts and the sorted extracted node-id streams).
The comparison also cross-checks the sizing contract the advisor's
reports rely on: ``ColumnarStore.nbytes`` must equal the
statistics-derived ``DatabaseStatistics.columnar_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.executor.executor import QueryExecutor
from repro.storage.document_store import XmlDatabase
from repro.telemetry import wall_clock
from repro.workloads.xmark import XMarkConfig, generate_xmark_database
from repro.xquery.model import NormalizedQuery
from repro.xquery.normalizer import normalize_statement

#: The descendant-heavy workload: summary-unsafe ``//`` shapes over the
#: XMark schema (`//x` where an `x` ancestor exists, `//*` tails, and a
#: double-descendant spine).  None of them is answerable by the path
#: summary's loose matching, so the escape hatch pays one full
#: interpreter walk per document per query.
DESCENDANT_QUERIES: Tuple[str, ...] = (
    "/site//*",
    "/site/regions//*",
    "/site/open_auctions//*",
    "/site//item//name",
    "/site/people//person//*",
)


@dataclass
class ColumnarComparison:
    """Outcome of one columnar-vs-interpretive comparison run."""

    documents: int
    #: Stored positions in the collection's columnar encoding.
    node_count: int
    columnar_seconds: float
    interpretive_seconds: float
    #: Interpreter-evaluated (query, document) residuals on the columnar
    #: side -- the acceptance criterion: zero (every descendant-heavy
    #: spine stays on the axis engine).
    columnar_fallbacks: int
    #: Same counter on the escape-hatch side (must be positive: the
    #: workload genuinely exercises the unsafe shapes).
    interpretive_fallbacks: int
    queries_total: int
    result_rows: int
    #: Per-query result counts and extracted node-id streams identical
    #: between the two modes.
    identical_results: bool
    #: ``ColumnarStore.nbytes`` equal to the statistics-derived
    #: ``DatabaseStatistics.columnar_bytes``.
    sizing_consistent: bool

    @property
    def scan_ratio(self) -> float:
        """Wall-clock speedup of the columnar scan (higher is better)."""
        return self.interpretive_seconds / max(self.columnar_seconds, 1e-9)


def descendant_workload() -> List[NormalizedQuery]:
    """The normalized descendant-heavy query list."""
    return [normalize_statement(text) for text in DESCENDANT_QUERIES]


def _run_queries(executor: QueryExecutor,
                 queries: Sequence[NormalizedQuery]) -> list:
    return [executor.execute(query, extract=True) for query in queries]


def _result_signature(results) -> list:
    return [(result.result_count,
             tuple(sorted(node.node_id for node in result.extracted_nodes
                          or [])))
            for result in results]


def compare_columnar_modes(scale: float = 0.25, seed: int = 42,
                           repeats: int = 3) -> ColumnarComparison:
    """Run the full columnar-vs-interpretive comparison at ``scale``."""
    database = generate_xmark_database(XMarkConfig(scale=scale, seed=seed))
    collection = database.collection("xmark")
    queries = descendant_workload()

    # Vectorized predicates are pinned off on both sides so the ratio
    # keeps isolating the *axis engine* (postings bisects vs pointer
    # chasing); the E14 comparison owns the set-at-a-time engine.
    columnar = QueryExecutor(database, use_columnar=True,
                             use_vectorized_predicates=False)
    interpretive = QueryExecutor(database, use_columnar=False,
                                 use_vectorized_predicates=False)
    # Publish the lazy snapshots (summary + columnar store) outside the
    # timed region: both modes measure steady-state scans, not builds.
    store = collection.columnar_store
    columnar_results = _run_queries(columnar, queries)
    interpretive_results = _run_queries(interpretive, queries)

    columnar_best = interpretive_best = float("inf")
    for _ in range(repeats):
        start = wall_clock()
        columnar_results = _run_queries(columnar, queries)
        columnar_best = min(columnar_best, wall_clock() - start)
        start = wall_clock()
        interpretive_results = _run_queries(interpretive, queries)
        interpretive_best = min(interpretive_best,
                                wall_clock() - start)

    identical = (_result_signature(columnar_results)
                 == _result_signature(interpretive_results))
    stats = database.statistics
    sizing_consistent = (
        store.nbytes == stats.collection_stats["xmark"].columnar_bytes
        and stats.columnar_bytes == sum(
            c.columnar_store.nbytes for c in database.collections))

    return ColumnarComparison(
        documents=len(collection),
        node_count=store.node_count,
        columnar_seconds=columnar_best,
        interpretive_seconds=interpretive_best,
        columnar_fallbacks=columnar.interpretive_spine_fallbacks,
        interpretive_fallbacks=interpretive.interpretive_spine_fallbacks,
        queries_total=len(queries),
        result_rows=sum(r.result_count for r in columnar_results),
        identical_results=identical,
        sizing_consistent=sizing_consistent,
    )
