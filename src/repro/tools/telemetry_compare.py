"""Telemetry overhead comparison (shared E15 protocol).

One implementation of the tracing-overhead measurement used by the E15
benchmark entry in ``tools/bench_record.py`` and the tier-1
``bench_smoke`` guard, so the protocol cannot silently diverge between
the guard and the recorded numbers.

Protocol: the co-resident XMark+TPoX database runs the predicate-heavy
E14 workload through two executors sharing the database:

* the **untraced** executor (``trace=False``) runs with the metrics
  registry armed (counters are never optional) but builds no span
  trees and records no cost-accounting samples;
* the **traced** executor (``trace=True``) additionally builds the
  full per-query span tree (parse -> compile -> plan -> route ->
  scan/index-probe -> residual -> extract) and pairs every planned
  query's predicted cost with its measured wall time.

Wall-clock is best-of-``repeats`` per mode; equivalence is byte-exact
per query (result counts, documents examined and the extracted value
streams), pinning the observe-only contract: tracing must never change
what a query returns.  The overhead ratio (traced / untraced) is the
number ``REPRO_SMOKE_MAX_TELEMETRY_OVERHEAD`` gates in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.executor.executor import QueryExecutor
from repro.telemetry import wall_clock
from repro.tools.routing_compare import build_coresident_database
from repro.tools.vectorized_compare import predicate_workload
from repro.xquery.model import NormalizedQuery


@dataclass
class TelemetryComparison:
    """Outcome of one traced-vs-untraced comparison run."""

    documents: int
    untraced_seconds: float
    traced_seconds: float
    queries_total: int
    result_rows: int
    #: Spans in the trace trees of the last traced run (one tree per
    #: query; deterministic for a fixed workload and database).
    spans_recorded: int
    #: Predicted-vs-measured cost samples the traced executor paired.
    cost_samples: int
    #: Per-query result counts, documents examined and extracted value
    #: streams identical between the two modes (the observe-only gate).
    identical_results: bool

    @property
    def overhead_ratio(self) -> float:
        """Wall-clock cost of tracing (lower is better; 1.0 = free)."""
        return self.traced_seconds / max(self.untraced_seconds, 1e-9)


def _run_queries(executor: QueryExecutor,
                 queries: Sequence[NormalizedQuery]) -> list:
    return [executor.execute(query, extract_values=True)
            for query in queries]


def _result_signature(results) -> list:
    return [(result.result_count, result.documents_examined,
             tuple(result.extracted_values or ()))
            for result in results]


def compare_telemetry_modes(scale: float = 0.25, seed: int = 42,
                            repeats: int = 3) -> TelemetryComparison:
    """Run the full traced-vs-untraced comparison at ``scale``.

    The scale is floored at 0.25: tracing costs a fixed handful of
    microseconds per query, so measuring it against sub-0.1ms toy
    queries reports an overhead no real workload would see.
    """
    database = build_coresident_database(scale=max(scale, 0.25), seed=seed,
                                         name="telemetry")
    queries = predicate_workload()

    # Tracing pinned explicitly per executor (not inherited from
    # REPRO_TRACE) so the comparison measures both modes regardless of
    # how the environment armed the session.
    untraced = QueryExecutor(database, trace=False)
    traced = QueryExecutor(database, trace=True)
    # Publish the lazy snapshots (summaries, columnar stores, value
    # projections) outside the timed region: both modes measure
    # steady-state execution, not builds.
    untraced_results = _run_queries(untraced, queries)
    traced_results = _run_queries(traced, queries)

    untraced_best = traced_best = float("inf")
    for _ in range(repeats):
        start = wall_clock()
        untraced_results = _run_queries(untraced, queries)
        untraced_best = min(untraced_best, wall_clock() - start)
        start = wall_clock()
        traced_results = _run_queries(traced, queries)
        traced_best = min(traced_best, wall_clock() - start)

    identical = (_result_signature(untraced_results)
                 == _result_signature(traced_results))
    spans = sum(len(list(result.trace.walk())) for result in traced_results
                if result.trace is not None)
    return TelemetryComparison(
        documents=database.statistics.document_count,
        untraced_seconds=untraced_best,
        traced_seconds=traced_best,
        queries_total=len(queries),
        result_rows=sum(r.result_count for r in untraced_results),
        spans_recorded=spans,
        cost_samples=len(traced.cost_accounting.samples),
        identical_results=identical)
