"""Reporting and command-line tooling.

The paper demonstrates the advisor through a visual client; this package
provides the equivalent functionality as text reports
(:mod:`repro.tools.report`) and a command-line interface
(:mod:`repro.tools.cli`, installed as ``xml-index-advisor``).
"""

from repro.tools.export import (
    analysis_to_dict,
    recommendation_to_dict,
    recommendation_to_json,
)
from repro.tools.report import (
    candidate_report,
    dag_report,
    enumerate_report,
    evaluate_report,
    recommendation_report,
    render_table,
)

__all__ = [
    "analysis_to_dict",
    "candidate_report",
    "dag_report",
    "enumerate_report",
    "evaluate_report",
    "recommendation_report",
    "recommendation_to_dict",
    "recommendation_to_json",
    "render_table",
]
