"""Vectorized predicate scan comparison (shared E14 protocol).

One implementation of the vectorized measurement used by three
consumers -- the E14 benchmark (``benchmarks/bench_e14_vectorized.py``),
the tier-1 ``bench_smoke`` guard (``tests/test_bench_smoke.py``), and
the perf-trajectory recorder (``tools/bench_record.py``) -- so the
measurement protocol cannot silently diverge between the guard, the
bench and the recorded numbers.

Protocol: one database hosts XMark (at ``scale``) and the three TPoX
collections side by side, and a *predicate-heavy* workload -- range and
equality comparisons on element text, attributes, floats and strings,
including conjunctions -- is executed as document scans with value
extraction by two executors sharing the database:

* the **vectorized** executor (``use_vectorized_predicates=True``, the
  default) answers each predicate with two bisects over the path's
  value-sorted projection and intersects the per-predicate document
  sets (:meth:`~repro.storage.columnar.ColumnarStore.matching_documents`),
  serving extraction values straight from the values column -- zero
  ``XmlNode`` materializations, guarded by the executor's
  ``scan_node_materializations`` counter;
* the **object-hop** executor (``use_vectorized_predicates=False``, the
  escape hatch) runs the same columnar-backed scans but materializes
  each document's predicate nodes and compares typed values one object
  at a time (`_document_matches` -> `_compare_node`).

Both sides keep the columnar axis engine on, so the ratio isolates
set-at-a-time predicate evaluation -- not PR 8's axis engine (that is
E13's comparison).  Wall-clock is best-of-``repeats`` per mode;
equivalence is byte-exact per query (result counts, documents examined
and the extracted value streams).  The sizing cross-check asserts
``ColumnarStore.nbytes`` (now including the projection slots) still
equals the statistics-derived ``columnar_bytes`` per collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.executor.executor import QueryExecutor
from repro.storage.document_store import XmlDatabase
from repro.telemetry import wall_clock
from repro.tools.routing_compare import build_coresident_database
from repro.xquery.model import NormalizedQuery
from repro.xquery.normalizer import normalize_statement

#: The predicate-heavy workload: every statement carries at least one
#: value comparison (equality and range, element text and attributes,
#: float and string literals, plus conjunctions), spread over the XMark
#: collection and all three TPoX collections.
PREDICATE_QUERIES: Tuple[str, ...] = (
    # XMark: numeric ranges over items, auctions and people.
    'for $i in doc("x")/site/regions/africa/item '
    'where $i/quantity > 7 return $i/name',
    'for $i in doc("x")/site/regions/namerica/item '
    'where $i/price >= 350 return $i/name',
    'for $i in doc("x")/site/regions/africa/item '
    'where $i/payment = "Creditcard" return $i/name',
    'for $p in doc("x")/site/people/person '
    'where $p/profile/@income > 200000 return $p/name',
    'for $p in doc("x")/site/people/person '
    'where $p/profile/age >= 80 return $p/name',
    'for $p in doc("x")/site/people/person '
    'where $p/address/city = "Cairo" return $p/name',
    'for $a in doc("x")/site/open_auctions/auction '
    'where $a/current > 250 return $a/itemref',
    'for $c in doc("x")/site/closed_auctions/auction '
    'where $c/price >= 400 return $c/price',
    'for $i in doc("x")/site/regions/africa/item '
    'where $i/quantity > 5 and $i/payment = "Creditcard" return $i/name',
    # TPoX: orders, securities and customer accounts.
    'for $o in doc("order.xml")/FIXML/Order '
    'where $o/OrdQty/@Qty > 4500 return $o/Instrmt',
    'for $s in doc("security.xml")/Security '
    'where $s/Price/LastTrade > 800 return $s/Symbol',
    'for $s in doc("security.xml")/Security '
    'where $s/Sector = "Technology" and $s/SecurityInformation/Yield > 7 '
    'return $s/Name',
    'for $c in doc("custacc.xml")/Customer '
    'where $c/Accounts/Account/@balance > 1800000 return $c/Name/LastName',
    'for $c in doc("custacc.xml")/Customer '
    'where $c/CountryOfResidence = "DE" and $c/PremiumCustomer = "true" '
    'return $c/Name/LastName',
)


@dataclass
class VectorizedComparison:
    """Outcome of one vectorized-vs-object-hop comparison run."""

    documents: int
    vectorized_seconds: float
    hatch_seconds: float
    #: XmlNode list materializations on the vectorized side -- the
    #: acceptance criterion: zero (predicates and value extraction
    #: never leave the columns).
    vectorized_materializations: int
    #: Same counter on the escape-hatch side (must be positive: the
    #: workload genuinely exercises the object hop being compared).
    hatch_materializations: int
    queries_total: int
    result_rows: int
    #: Per-query result counts, documents examined and extracted value
    #: streams identical between the two modes.
    identical_results: bool
    #: ``ColumnarStore.nbytes`` (including the projection slots) equal
    #: to the statistics-derived ``columnar_bytes`` per collection.
    sizing_consistent: bool

    @property
    def scan_ratio(self) -> float:
        """Wall-clock speedup of the vectorized scan (higher is better)."""
        return self.hatch_seconds / max(self.vectorized_seconds, 1e-9)


def predicate_workload() -> List[NormalizedQuery]:
    """The normalized predicate-heavy query list."""
    return [normalize_statement(text) for text in PREDICATE_QUERIES]


def _run_queries(executor: QueryExecutor,
                 queries: Sequence[NormalizedQuery]) -> list:
    return [executor.execute(query, extract_values=True)
            for query in queries]


def _result_signature(results) -> list:
    return [(result.result_count, result.documents_examined,
             tuple(result.extracted_values or ()))
            for result in results]


def compare_vectorized_modes(scale: float = 0.25, seed: int = 42,
                             repeats: int = 3) -> VectorizedComparison:
    """Run the full vectorized-vs-object-hop comparison at ``scale``."""
    database = build_coresident_database(scale=scale, seed=seed,
                                         name="vectorized")
    queries = predicate_workload()

    # Both hatches pinned explicitly (not inherited from the
    # environment) so the comparison still measures the set-at-a-time
    # engine under the hatch-off CI matrix jobs.
    vectorized = QueryExecutor(database, use_columnar=True,
                               use_vectorized_predicates=True)
    hatch = QueryExecutor(database, use_columnar=True,
                          use_vectorized_predicates=False)
    # Publish the lazy snapshots (summaries, columnar stores, value
    # projections) outside the timed region: both modes measure
    # steady-state scans, not builds.
    vectorized_results = _run_queries(vectorized, queries)
    hatch_results = _run_queries(hatch, queries)

    vectorized_best = hatch_best = float("inf")
    for _ in range(repeats):
        start = wall_clock()
        vectorized_results = _run_queries(vectorized, queries)
        vectorized_best = min(vectorized_best, wall_clock() - start)
        start = wall_clock()
        hatch_results = _run_queries(hatch, queries)
        hatch_best = min(hatch_best, wall_clock() - start)

    identical = (_result_signature(vectorized_results)
                 == _result_signature(hatch_results))
    stats = database.statistics
    sizing_consistent = all(
        database.collection(name).columnar_store.nbytes
        == stats.collection_stats[name].columnar_bytes
        for name in ("xmark", "order", "security", "custacc"))
    return VectorizedComparison(
        documents=stats.document_count,
        vectorized_seconds=vectorized_best,
        hatch_seconds=hatch_best,
        vectorized_materializations=vectorized.scan_node_materializations,
        hatch_materializations=hatch.scan_node_materializations,
        queries_total=len(queries),
        result_rows=sum(r.result_count for r in vectorized_results),
        identical_results=identical,
        sizing_consistent=sizing_consistent)
