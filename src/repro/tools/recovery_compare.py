"""Recovery-overhead comparison (shared E12 protocol).

One implementation of the fault-recovery measurement used by the E12
benchmark (``benchmarks/bench_e12_recovery.py``) and the
perf-trajectory recorder (``tools/bench_record.py``), so the guard,
the bench and the recorded numbers cannot silently diverge.

Protocol (two identical databases, same tuning policy):

* **clean run** -- a :class:`~repro.tuning.controller.TuningController`
  observes the XMark training workload and cycles until the advised
  configuration stands; the whole tuning phase is wall-timed and every
  read query's result count recorded.
* **faulted run** -- the same protocol on the second database, under a
  deterministic :class:`~repro.faults.FaultPlan`: background transient
  faults at every seam (absorbed by seam-local retries) plus one
  persistent failure of the first physical index build (forcing a full
  rollback, a backed-off retry and re-convergence).  The loop runs
  until the catalog holds the same configuration with nothing pending.
* **degraded-mode check** -- with the faulted database converged, one
  live index is marked unusable and every query re-executed: the
  summary-scan fallback must return result counts identical to the
  clean run (provably unchanged results), after which the repair path
  rebuilds the index and the final configurations are compared.

The headline number is ``overhead_ratio`` -- faulted tuning wall time
over clean tuning wall time, i.e. the price of riding through every
injected fault -- gated in CI by ``REPRO_SMOKE_MAX_RECOVERY_OVERHEAD``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.executor.executor import QueryExecutor
from repro.faults import INDEX_BUILD, FaultPlan, FaultRule, inject
from repro.storage.document_store import XmlDatabase
from repro.telemetry import wall_clock
from repro.tuning.controller import TuningController, TuningPolicy
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)
from repro.xquery.model import NormalizedQuery
from repro.xquery.normalizer import normalize_workload

#: Policy shape shared by both runs: fast backoff so the faulted run's
#: deferred retry lands within a handful of observation ticks, and an
#: attempt budget the single-shot persistent fault cannot exhaust.
TRAIN_ROUNDS = 3
MAX_RECOVERY_CYCLES = 8
SMOKE_PERIOD = 5


@dataclass(frozen=True)
class RecoveryComparison:
    """Outcome of one clean-vs-faulted recovery comparison."""

    clean_seconds: float
    faulted_seconds: float
    #: Faulted tuning wall time over clean (>= ~1; the recovery price).
    overhead_ratio: float
    #: Both runs converged to the same applied configuration with no
    #: pending builds, no quarantines and a consistent catalog.
    converged: bool
    #: Per-query result counts identical, clean vs faulted.
    results_identical: bool
    #: Degraded-mode (summary-scan fallback) result counts identical to
    #: the clean run while one index was unusable.
    fallback_identical: bool
    #: The repair path rebuilt the degraded index afterwards.
    repaired: bool
    cycles_clean: int
    cycles_faulted: int
    faults_injected: int
    transients_absorbed: int
    rollbacks: int
    build_failures: int
    scan_fallbacks: int

    def describe(self) -> str:
        return (
            f"recovery: clean {self.clean_seconds:.4f}s -> faulted "
            f"{self.faulted_seconds:.4f}s ({self.overhead_ratio:.2f}x) "
            f"over {self.faults_injected} injected fault(s) "
            f"({self.transients_absorbed} absorbed, "
            f"{self.rollbacks} rollback(s)); "
            f"converged={self.converged} results={self.results_identical} "
            f"fallback={self.fallback_identical} repaired={self.repaired}")


def _recovery_policy() -> TuningPolicy:
    return TuningPolicy(retry_backoff_steps=1, retry_backoff_cap=2,
                        max_build_attempts=5)


def _recovery_plan() -> FaultPlan:
    """Transient noise at every seam plus one persistent build failure."""
    smoke = FaultPlan.smoke(period=SMOKE_PERIOD)
    return FaultPlan(rules=smoke.rules + (
        FaultRule(site=INDEX_BUILD, hits=(1,), transient=False,
                  message="E12: first physical build dies"),))


def _tune_to_convergence(controller: TuningController,
                         queries: List[NormalizedQuery]) -> Tuple[float, int]:
    """Observe + cycle until the advised configuration stands (nothing
    pending); returns (tuning wall seconds, cycles run)."""
    catalog = controller.database.catalog
    start = wall_clock()
    controller.observe(queries, rounds=TRAIN_ROUNDS)
    cycles = 0
    for _ in range(MAX_RECOVERY_CYCLES):
        event = controller.run_cycle()
        cycles += 1
        if event.applied and not catalog.pending_builds \
                and not catalog.unusable_indexes:
            break
        controller.observe(queries, rounds=1)
    return wall_clock() - start, cycles


def _result_counts(executor: QueryExecutor,
                   queries: List[NormalizedQuery]) -> Dict[str, int]:
    return {query.query_id: executor.execute(query).result_count
            for query in queries if not query.is_update}


def _live_keys(controller: TuningController) -> FrozenSet[Tuple[str, str]]:
    return controller.live_configuration_keys


def compare_recovery_modes(scale: float = 0.1, seed: int = 42,
                           disk_budget_bytes: float = 96 * 1024.0
                           ) -> RecoveryComparison:
    """Run the full clean-vs-faulted recovery protocol at ``scale``."""
    queries = normalize_workload(xmark_query_workload(name="e12"))

    def _controller() -> Tuple[XmlDatabase, QueryExecutor, TuningController]:
        database = generate_xmark_database(XMarkConfig(scale=scale, seed=seed))
        executor = QueryExecutor(database)
        policy = _recovery_policy()
        policy.disk_budget_bytes = disk_budget_bytes
        return database, executor, TuningController(
            database, executor=executor, policy=policy)

    # --- clean run ----------------------------------------------------
    _, clean_executor, clean_controller = _controller()
    clean_seconds, cycles_clean = _tune_to_convergence(clean_controller,
                                                       queries)
    clean_counts = _result_counts(clean_executor, queries)
    clean_keys = _live_keys(clean_controller)

    # --- faulted run --------------------------------------------------
    database, executor, controller = _controller()
    with inject(_recovery_plan()) as injector:
        faulted_seconds, cycles_faulted = _tune_to_convergence(controller,
                                                               queries)
        faulted_counts = _result_counts(executor, queries)
        faults_injected = len(injector.injected)
        transients_absorbed = injector.absorbed_total

    catalog = database.catalog
    converged = (_live_keys(controller) == clean_keys
                 and not catalog.pending_builds
                 and not catalog.quarantined_keys
                 and not catalog.consistency_errors())
    results_identical = faulted_counts == clean_counts

    # --- degraded-mode check ------------------------------------------
    fallback_identical = False
    repaired = False
    physical = sorted(catalog.physical_indexes, key=lambda d: d.name)
    if physical:
        victim = physical[0].name
        catalog.mark_index_unusable(victim, "E12: simulated probe failure")
        fallback_counts = _result_counts(executor, queries)
        fallback_identical = fallback_counts == clean_counts
        repaired = bool(executor.repair_indexes()) \
            and catalog.index_usable(victim)

    return RecoveryComparison(
        clean_seconds=clean_seconds,
        faulted_seconds=faulted_seconds,
        overhead_ratio=faulted_seconds / max(clean_seconds, 1e-9),
        converged=converged,
        results_identical=results_identical,
        fallback_identical=fallback_identical,
        repaired=repaired,
        cycles_clean=cycles_clean,
        cycles_faulted=cycles_faulted,
        faults_injected=faults_injected,
        transients_absorbed=transients_absorbed,
        rollbacks=controller.rollbacks,
        build_failures=controller.build_failures,
        scan_fallbacks=executor.scan_fallbacks)
