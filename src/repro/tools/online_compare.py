"""Online-vs-offline tuning comparison (shared E10 protocol).

One implementation of the online-loop measurement used by three
consumers -- the E10 benchmark (``benchmarks/bench_e10_online.py``),
the tier-1 ``bench_smoke`` guard (``tests/test_bench_smoke.py``), and
the perf-trajectory recorder (``tools/bench_record.py``) -- so the
measurement protocol cannot silently diverge between the guard, the
bench and the recorded numbers.

Protocol (every phase deterministic -- logical steps, no wall clock):

* **stationary convergence** -- an offline advisor run on the XMark
  training workload is recorded first; then a
  :class:`~repro.tuning.controller.TuningController` observes the same
  workload executed round-by-round through a monitored executor and
  runs one tuning cycle.  The online loop's applied configuration must
  be byte-identical (index key sets) to the offline recommendation,
  and a further stationary cycle must report *no* drift (the loop does
  not oscillate).
* **shift re-convergence** -- traffic switches to the held-out XMark
  queries (same shapes, unseen regions/constants).  The controller
  must detect the drift, migrate (dropping now-useless indexes), and
  -- once the old traffic has decayed below the prune floor -- hold a
  configuration byte-identical to an offline advisor run on the
  shifted workload.
* **bounded compression** -- a monitor is flooded with ad-hoc query
  templates (distinct literals and regions), at 1x and at 10x volume;
  the compressed advisor input must stay at or below the configured
  cluster cap at both volumes while capture itself keeps aggregating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.config import AdvisorParameters
from repro.executor.executor import QueryExecutor
from repro.storage.document_store import XmlDatabase
from repro.tuning.compressor import compress_snapshot
from repro.tuning.controller import TuningController, TuningPolicy
from repro.tuning.monitor import WorkloadMonitor
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
    xmark_unseen_queries,
)
from repro.xquery.normalizer import normalize_statement, normalize_workload

#: Policy shape shared by every consumer of the protocol: decay fast
#: enough that a superseded workload prunes out within the shift phase.
ONLINE_DECAY = 0.5
PRUNE_FRACTION = 0.02
CLUSTER_CAP = 32
TRAIN_ROUNDS = 3
SHIFT_ROUNDS = 10

#: The flood phase's cluster cap (small on purpose: the captured
#: template count must exceed it many times over).
FLOOD_CLUSTER_CAP = 8

#: Ad-hoc template flood: regions x fields x distinct literals.
FLOOD_REGIONS: Tuple[str, ...] = ("africa", "asia", "australia",
                                  "europe", "namerica", "samerica")


@dataclass
class OnlineComparison:
    """Outcome of one online-vs-offline comparison run."""

    # --- stationary convergence ---------------------------------------
    #: Online loop's applied configuration == offline advisor's (keys).
    stationary_identical: bool
    #: A further stationary cycle reported no drift (no oscillation).
    stationary_stable: bool
    online_keys: FrozenSet[Tuple[str, str]]
    offline_keys: FrozenSet[Tuple[str, str]]
    #: Queries served by index plans after the first migration.
    index_plans_after_migration: int
    # --- shift re-convergence -----------------------------------------
    #: The post-shift cycle crossed the drift threshold.
    drift_detected: bool
    drift_score: float
    #: The post-shift migration dropped at least one stale index.
    migrated_with_drops: bool
    #: Post-shift configuration == offline advisor on the shifted
    #: workload (keys), once old traffic decayed out.
    reconverged_identical: bool
    # --- bounded compression ------------------------------------------
    captured_templates_1x: int
    compressed_size_1x: int
    captured_templates_10x: int
    compressed_size_10x: int
    flood_cluster_cap: int
    #: Captured templates per compressed cluster at 10x volume (the
    #: deterministic bound ratio: counts, not seconds).
    @property
    def compression_ratio(self) -> float:
        return self.captured_templates_10x / max(self.compressed_size_10x, 1)

    @property
    def compression_bounded(self) -> bool:
        return (self.compressed_size_1x <= self.flood_cluster_cap
                and self.compressed_size_10x <= self.flood_cluster_cap)

    @property
    def converged(self) -> bool:
        """Every equivalence/behaviour flag at once."""
        return (self.stationary_identical and self.stationary_stable
                and self.drift_detected and self.migrated_with_drops
                and self.reconverged_identical and self.compression_bounded)


def _flood_monitor(monitor: WorkloadMonitor, volume: int) -> None:
    """Record ``volume`` ad-hoc executions of distinct query templates
    (regions x fields x literals) into ``monitor``."""
    fields = ("quantity", "price")
    for i in range(volume):
        region = FLOOD_REGIONS[i % len(FLOOD_REGIONS)]
        field = fields[(i // len(FLOOD_REGIONS)) % len(fields)]
        literal = 1 + (i % 97)
        text = (f'for $i in doc("xmark.xml")/site/regions/{region}/item '
                f'where $i/{field} > {literal} return $i/name')
        monitor.record(normalize_statement(text, query_id=f"adhoc-{i}"))
        if (i + 1) % 25 == 0:
            monitor.tick()


def compare_online_offline(scale: float = 0.1, seed: int = 42,
                           disk_budget_bytes: float = 96 * 1024.0,
                           flood_volume: int = 60) -> OnlineComparison:
    """Run the full online-vs-offline protocol at ``scale``."""
    database = generate_xmark_database(XMarkConfig(scale=scale, seed=seed))
    train = normalize_workload(xmark_query_workload(name="online-train"))
    shifted = normalize_workload(xmark_unseen_queries(name="online-shift"))

    # Offline references first: advising is read-only and the loop never
    # changes documents, so both runs see the same statistics.
    offline = XmlIndexAdvisor(
        database, AdvisorParameters(disk_budget_bytes=disk_budget_bytes))
    offline_keys = frozenset(
        d.key for d in offline.recommend(
            xmark_query_workload(name="offline-train")).configuration)
    offline_shift_keys = frozenset(
        d.key for d in offline.recommend(
            xmark_unseen_queries(name="offline-shift")).configuration)

    # --- stationary convergence ---------------------------------------
    executor = QueryExecutor(database)
    controller = TuningController(
        database, executor=executor,
        policy=TuningPolicy(disk_budget_bytes=disk_budget_bytes,
                            decay=ONLINE_DECAY,
                            min_weight_fraction=PRUNE_FRACTION,
                            cluster_cap=CLUSTER_CAP))
    controller.observe(train, rounds=TRAIN_ROUNDS)
    first = controller.run_cycle()
    online_keys = controller.live_configuration_keys
    stationary_identical = (first.action == "migrated"
                            and online_keys == offline_keys)

    # More stationary traffic: served by the new indexes, no re-tuning.
    controller.observe(train, rounds=2)
    index_plans_after = sum(
        1 for query in train if not query.is_update
        and executor.execute(query).used_index_plan)
    second = controller.run_cycle()
    stationary_stable = second.action == "idle"

    # --- shift re-convergence -----------------------------------------
    controller.observe(shifted, rounds=SHIFT_ROUNDS)
    third = controller.run_cycle()
    drift_detected = third.report is not None and third.report.exceeded
    drift_score = third.report.score if third.report is not None else 0.0
    migrated_with_drops = (third.action == "migrated"
                           and third.plan is not None
                           and len(third.plan.drops) > 0)
    reconverged_identical = (
        controller.live_configuration_keys == offline_shift_keys)

    # --- bounded compression ------------------------------------------
    monitor_1x = WorkloadMonitor(decay=ONLINE_DECAY)
    _flood_monitor(monitor_1x, flood_volume)
    snapshot_1x = monitor_1x.snapshot()
    compressed_1x = compress_snapshot(snapshot_1x, FLOOD_CLUSTER_CAP)
    monitor_10x = WorkloadMonitor(decay=ONLINE_DECAY)
    _flood_monitor(monitor_10x, flood_volume * 10)
    snapshot_10x = monitor_10x.snapshot()
    compressed_10x = compress_snapshot(snapshot_10x, FLOOD_CLUSTER_CAP)

    return OnlineComparison(
        stationary_identical=stationary_identical,
        stationary_stable=stationary_stable,
        online_keys=online_keys,
        offline_keys=offline_keys,
        index_plans_after_migration=index_plans_after,
        drift_detected=drift_detected,
        drift_score=drift_score,
        migrated_with_drops=migrated_with_drops,
        reconverged_identical=reconverged_identical,
        captured_templates_1x=len(snapshot_1x.entries),
        compressed_size_1x=len(compressed_1x.clusters),
        captured_templates_10x=len(snapshot_10x.entries),
        compressed_size_10x=len(compressed_10x.clusters),
        flood_cluster_cap=FLOOD_CLUSTER_CAP,
    )
