"""Collection-scoped routing comparison (shared E7 protocol).

One implementation of the routing measurement used by three consumers
-- the E7 benchmark (``benchmarks/bench_e7_routing.py``), the tier-1
``bench_smoke`` guard (``tests/test_bench_smoke.py``), and the
perf-trajectory recorder (``tools/bench_record.py``) -- so the
measurement protocol cannot silently diverge between the guard, the
bench and the recorded numbers.

Protocol: XMark and TPoX are loaded *co-resident* into one database
(collections ``xmark`` + ``order``/``security``/``custacc``), with the
TPoX side scaled up as ballast.  Two comparisons run against it:

* **scan routing** -- the XMark query workload (every query
  single-collection-rooted at ``/site``) is executed as document scans
  by a routed executor (collection-scoped costing + structural routing,
  the defaults) and by an unrouted one
  (``use_collection_costing=False`` + ``use_collection_routing=False``,
  the escape hatch): wall-clock, documents examined, and per-query
  result identity.  The routed scan visits only the ``xmark``
  collection; the unrouted scan walks the ballast too.
* **what-if re-costing** -- a combined XMark+TPoX workload is evaluated
  against a fixed index configuration by a routed and an escape-hatch
  :class:`~repro.advisor.benefit.ConfigurationEvaluator`; one document
  is then added to a *single* collection (``custacc``) and both
  evaluators delta-update their benefits.  The escape hatch's global
  aggregates guard forces a full re-cost of every workload query; the
  routed evaluator re-costs only the queries whose routing set contains
  the changed collection -- queries routed only to other collections
  are re-costed **zero** times (``cross_recostings``), and the result
  is still byte-identical to a fresh evaluation.

The advisor's recommended configuration (greedy-heuristic under a disk
budget) is also computed twice under the collection-scoped model: once
by a long-lived advisor whose optimizer plan cache lived through the
single-collection add (and was invalidated routing-scoped), and once by
a fresh advisor on the changed database.  The caching layers must never
change outcomes: configuration key set and total benefit are compared
byte-exactly.  (The legacy escape hatch is intentionally a *different*
cost model on multi-collection databases -- it charges every query for
every collection's pages -- so recommendations are only required to
coincide with it on single-collection databases, which the randomized
equivalence suite asserts.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.config import AdvisorParameters
from repro.executor.executor import QueryExecutor
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.optimizer.optimizer import Optimizer
from repro.storage.document_store import XmlDatabase
from repro.telemetry import wall_clock
from repro.workloads.tpox import (
    TpoxConfig,
    generate_tpox_database,
    tpox_query_workload,
)
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)
from repro.xmldb.serializer import serialize
from repro.xquery.model import NormalizedQuery, Workload, WorkloadStatement
from repro.xquery.normalizer import normalize_workload

#: The TPoX ballast is this many times the XMark scale: the routed scan
#: only ever touches the XMark collection, so the ballast factor is what
#: the unrouted scan pays for.
BALLAST_FACTOR = 4.0

#: The collection the single-document add targets in the re-costing
#: comparison: only three workload queries route to ``custacc``, so the
#: escape hatch's full re-cost is many times the routed one.
CHANGED_COLLECTION = "custacc"

#: The fixed index configuration the re-costing comparison evaluates
#: (both sides of the co-resident database are covered).
CONFIGURATION_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("/site/people/person/@id", "VARCHAR"),
    ("/site/regions/*/item/quantity", "DOUBLE"),
    ("/FIXML/Order/@ID", "VARCHAR"),
    ("/Security/Symbol", "VARCHAR"),
    ("/Customer/@id", "VARCHAR"),
)


@dataclass
class RoutingComparison:
    """Outcome of one routed-vs-unrouted comparison run."""

    xmark_documents: int
    ballast_documents: int
    routed_seconds: float
    unrouted_seconds: float
    routed_documents_examined: int
    unrouted_documents_examined: int
    #: Per-query result counts identical between the two scan modes.
    identical_results: bool
    queries_total: int
    #: Queries whose routing set contains the changed collection (plus
    #: any priced globally) -- the only ones the routed evaluator may
    #: re-cost after the add.
    queries_affected: int
    recostings_routed: int
    recostings_unrouted: int
    #: Re-costings of queries routed only to *other* collections after
    #: the single-collection add (the acceptance criterion: zero).
    cross_recostings: int
    #: Routed delta benefit across the change byte-identical to a fresh
    #: routed evaluation (total benefit and every per-query row).
    benefits_identical: bool
    #: Advisor recommendation (index key set + total benefit) identical
    #: between a long-lived advisor whose caches lived through the add
    #: and a fresh advisor on the changed database.
    configurations_identical: bool

    @property
    def scan_ratio(self) -> float:
        """Wall-clock speedup of the routed scan (higher is better)."""
        return self.unrouted_seconds / max(self.routed_seconds, 1e-9)

    @property
    def recosting_ratio(self) -> float:
        """Escape-hatch re-costings per routed re-costing (deterministic:
        it counts work, not seconds)."""
        return self.recostings_unrouted / max(self.recostings_routed, 1)


def build_coresident_database(scale: float = 0.25, seed: int = 42,
                              ballast_factor: float = BALLAST_FACTOR,
                              name: str = "coresident") -> XmlDatabase:
    """One database hosting XMark and TPoX side by side.

    The XMark collection is generated at ``scale``; the three TPoX
    collections at ``scale * ballast_factor`` so queries rooted in one
    collection have substantial unrelated data to be routed past.
    """
    database = XmlDatabase(name)
    sources = (
        generate_xmark_database(XMarkConfig(scale=scale, seed=seed)),
        generate_tpox_database(
            TpoxConfig(scale=scale * ballast_factor, seed=seed + 1)),
    )
    for source in sources:
        for collection in source.collections:
            target = database.create_collection(collection.name)
            for document in collection:
                target.add_document(serialize(document))
    return database


def combined_workload(name: str = "coresident") -> Workload:
    """The XMark and TPoX query workloads merged (reads only)."""
    workload = Workload(name=name)
    for statement in list(xmark_query_workload()) + list(tpox_query_workload()):
        workload.add(WorkloadStatement(text=statement.text,
                                       frequency=statement.frequency))
    return workload


def _configuration() -> IndexConfiguration:
    from repro.xquery.model import ValueType

    return IndexConfiguration([
        IndexDefinition.create(pattern, ValueType[value_type])
        for pattern, value_type in CONFIGURATION_PATTERNS])


def _measure_scans(database: XmlDatabase, queries: Sequence[NormalizedQuery],
                   repeats: int = 3) -> Tuple[float, float, int, int, bool]:
    """Best-of-``repeats`` wall-clock for routed vs unrouted scans.

    Vectorized predicates are pinned off on both sides so the ratio
    keeps isolating *routing*: with the set-at-a-time engine on, an
    unrouted collection costs a handful of bisects and the per-document
    work routing exists to avoid never happens (the E14 benchmark owns
    that comparison).
    """
    routed = QueryExecutor(database, use_vectorized_predicates=False)
    unrouted = QueryExecutor(
        database, optimizer=Optimizer(database, use_collection_costing=False),
        use_collection_routing=False, use_vectorized_predicates=False)
    routed_best = unrouted_best = float("inf")
    routed_docs = unrouted_docs = 0
    identical = True
    for _ in range(repeats):
        start = wall_clock()
        routed_results = [routed.execute(query) for query in queries]
        routed_best = min(routed_best, wall_clock() - start)
        start = wall_clock()
        unrouted_results = [unrouted.execute(query) for query in queries]
        unrouted_best = min(unrouted_best, wall_clock() - start)
        routed_docs = sum(r.documents_examined for r in routed_results)
        unrouted_docs = sum(r.documents_examined for r in unrouted_results)
        identical = identical and all(
            a.result_count == b.result_count
            for a, b in zip(routed_results, unrouted_results))
    return routed_best, unrouted_best, routed_docs, unrouted_docs, identical


def compare_routing_modes(scale: float = 0.25, seed: int = 42,
                          ballast_factor: float = BALLAST_FACTOR,
                          disk_budget_bytes: Optional[float] = 96 * 1024.0
                          ) -> RoutingComparison:
    """Run the full routed-vs-unrouted comparison at ``scale``."""
    database = build_coresident_database(scale=scale, seed=seed,
                                         ballast_factor=ballast_factor)
    xmark_documents = len(database.collection("xmark"))
    ballast_documents = sum(
        len(collection) for collection in database.collections
        if collection.name != "xmark")

    # --- scan routing: single-collection-rooted XMark queries ---------
    xmark_queries = [query for query in
                     normalize_workload(xmark_query_workload())
                     if not query.is_update]
    (routed_seconds, unrouted_seconds, routed_docs, unrouted_docs,
     identical_results) = _measure_scans(database, xmark_queries)

    # --- what-if re-costing after a single-collection document add ----
    queries = [query for query in normalize_workload(combined_workload())
               if not query.is_update]
    configuration = _configuration()
    # Created before the add so its optimizer plan cache lives through
    # the change (invalidated routing-scoped) and must still recommend
    # byte-identically to a fresh advisor afterwards.
    long_lived_advisor = XmlIndexAdvisor(database, AdvisorParameters(
        disk_budget_bytes=disk_budget_bytes))
    long_lived_advisor.recommend(combined_workload())  # warm the caches
    routed_evaluator = ConfigurationEvaluator(database, queries)
    legacy_evaluator = ConfigurationEvaluator(
        database, queries, AdvisorParameters(use_collection_costing=False))
    routed_base = routed_evaluator.evaluate(configuration)
    legacy_base = legacy_evaluator.evaluate(configuration)

    model = routed_evaluator.optimizer.cost_model
    affected_ids = set()
    for query in queries:
        routing = model.routing_set(query)
        if not routing or CHANGED_COLLECTION in routing:
            affected_ids.add(query.query_id)

    donor = generate_tpox_database(
        TpoxConfig(scale=scale * ballast_factor, seed=seed + 2), "donor")
    document = serialize(donor.collection(CHANGED_COLLECTION).documents[0])
    database.collection(CHANGED_COLLECTION).add_document(document)

    before = routed_evaluator.query_costings
    routed_delta = routed_evaluator.update(routed_base)
    recostings_routed = routed_evaluator.query_costings - before
    before = legacy_evaluator.query_costings
    legacy_evaluator.update(legacy_base)
    recostings_unrouted = legacy_evaluator.query_costings - before
    # Exact membership check, not a count difference: a re-costed row is
    # a *new* QueryEvaluation object, a reused one is the base's object.
    base_rows = {row.query_id: row for row in routed_base.query_evaluations}
    recosted_ids = {row.query_id for row in routed_delta.query_evaluations
                    if base_rows.get(row.query_id) is not row}
    cross_recostings = len(recosted_ids - affected_ids)

    fresh = ConfigurationEvaluator(database, queries)
    reference = fresh.evaluate(configuration)
    reference_rows = {row.query_id: row for row in reference.query_evaluations}
    benefits_identical = (
        routed_delta.total_benefit == reference.total_benefit
        and all(row.cost_with_configuration
                == reference_rows[row.query_id].cost_with_configuration
                and row.cost_without_indexes
                == reference_rows[row.query_id].cost_without_indexes
                for row in routed_delta.query_evaluations))

    # --- advisor recommendation: cached stack vs fresh ----------------
    cached_recommendation = long_lived_advisor.recommend(combined_workload())
    fresh_advisor = XmlIndexAdvisor(database, AdvisorParameters(
        disk_budget_bytes=disk_budget_bytes))
    fresh_recommendation = fresh_advisor.recommend(combined_workload())
    configurations_identical = (
        frozenset(d.key for d in cached_recommendation.configuration)
        == frozenset(d.key for d in fresh_recommendation.configuration)
        and cached_recommendation.total_benefit
        == fresh_recommendation.total_benefit)

    return RoutingComparison(
        xmark_documents=xmark_documents,
        ballast_documents=ballast_documents,
        routed_seconds=routed_seconds,
        unrouted_seconds=unrouted_seconds,
        routed_documents_examined=routed_docs,
        unrouted_documents_examined=unrouted_docs,
        identical_results=identical_results,
        queries_total=len(queries),
        queries_affected=len(affected_ids),
        recostings_routed=recostings_routed,
        recostings_unrouted=recostings_unrouted,
        cross_recostings=cross_recostings,
        benefits_identical=benefits_identical,
        configurations_identical=configurations_identical,
    )
