"""Legacy-vs-incremental advisor search comparison (shared protocol).

One implementation of the E3-style budget sweep used by three
consumers -- the E3 benchmarks (``benchmarks/bench_e3_search.py``), the
tier-1 ``bench_smoke`` guard (``tests/test_bench_smoke.py``), and the
perf-trajectory recorder (``tools/bench_record.py``) -- so the
comparison protocol (same candidates/DAG per mode, fresh evaluator per
run, ``enable_plan_cache`` coupled to ``use_incremental``) cannot
silently diverge between the guard, the bench and the recorded numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.benefit import ConfigurationEvaluator
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.enumeration import create_search
from repro.telemetry import wall_clock
from repro.xquery.model import Workload

#: The default E3 budget sweep, as fractions of the overtrained
#: (all-basic-candidates) configuration size.
DEFAULT_BUDGET_FRACTIONS: Tuple[float, ...] = (0.1, 0.25, 0.5, 1.0)

#: The iterative strategies the incremental engine accelerates (plain
#: greedy evaluates each candidate exactly once either way).
DEFAULT_ALGORITHMS: Tuple[SearchAlgorithm, ...] = (
    SearchAlgorithm.GREEDY_HEURISTIC, SearchAlgorithm.TOP_DOWN)


@dataclass
class SweepRow:
    """One (budget fraction, algorithm) comparison."""

    budget_fraction: float
    algorithm: str
    identical: bool
    legacy_costings: int
    incremental_costings: int
    configuration_keys: List[Tuple[str, str]]

    @property
    def costings_ratio(self) -> float:
        return self.legacy_costings / max(self.incremental_costings, 1)


@dataclass
class SweepResult:
    """Outcome of one legacy-vs-incremental budget sweep."""

    rows: List[SweepRow] = field(default_factory=list)
    #: mode ("legacy" | "incremental") -> {"costings", "plan_calls", "seconds"}
    totals: Dict[str, Dict[str, float]] = field(default_factory=dict)
    candidate_count: int = 0
    query_count: int = 0

    @property
    def identical(self) -> bool:
        return all(row.identical for row in self.rows)

    @property
    def costings_ratio(self) -> float:
        return (self.totals["legacy"]["costings"]
                / max(self.totals["incremental"]["costings"], 1))

    @property
    def time_speedup(self) -> float:
        return (self.totals["legacy"]["seconds"]
                / max(self.totals["incremental"]["seconds"], 1e-9))


def compare_search_modes(database,
                         workload: Union[Workload, Sequence[str]],
                         budget_fractions: Sequence[float] = DEFAULT_BUDGET_FRACTIONS,
                         algorithms: Sequence[SearchAlgorithm] = DEFAULT_ALGORITHMS
                         ) -> SweepResult:
    """Run the search sweep legacy (``use_incremental=False``, plan cache
    off) vs incremental (both on) and compare outcomes.

    Each run gets a fresh evaluator/optimizer so neither mode warms the
    other's caches; budgets are fractions of the overtrained
    configuration size, mirroring the E3 experiment.
    """
    advisor = XmlIndexAdvisor(database, AdvisorParameters())
    queries = advisor.normalize(workload)
    basic = advisor.enumerate_candidates(queries)
    generalization = advisor.generalize(basic)
    sizing = ConfigurationEvaluator(database, queries)
    overtrained_size = sizing.configuration_size_bytes(
        candidate.to_definition() for candidate in basic)

    result = SweepResult(candidate_count=len(generalization.candidates),
                         query_count=len(queries))
    result.totals = {mode: {"costings": 0, "plan_calls": 0, "seconds": 0.0}
                     for mode in ("legacy", "incremental")}
    for fraction in budget_fractions:
        budget = overtrained_size * fraction
        for algorithm in algorithms:
            outcome = {}
            for incremental in (False, True):
                parameters = AdvisorParameters(disk_budget_bytes=budget,
                                               search_algorithm=algorithm,
                                               use_incremental=incremental,
                                               enable_plan_cache=incremental)
                evaluator = ConfigurationEvaluator(database, queries, parameters)
                search = create_search(algorithm, evaluator, parameters)
                start = wall_clock()
                search_result = search.search(generalization.candidates,
                                              generalization.dag)
                elapsed = wall_clock() - start
                mode = "incremental" if incremental else "legacy"
                totals = result.totals[mode]
                totals["costings"] += evaluator.query_costings
                totals["plan_calls"] += evaluator.optimizer.plan_calls
                totals["seconds"] += elapsed
                outcome[mode] = (search_result, evaluator.query_costings)
            legacy, legacy_costings = outcome["legacy"]
            incremental_result, incremental_costings = outcome["incremental"]
            keys = [definition.key for definition in incremental_result.configuration]
            result.rows.append(SweepRow(
                budget_fraction=fraction,
                algorithm=algorithm.value,
                identical=([d.key for d in legacy.configuration] == keys
                           and abs(legacy.benefit.total_benefit
                                   - incremental_result.benefit.total_benefit)
                           < 1e-6),
                legacy_costings=legacy_costings,
                incremental_costings=incremental_costings,
                configuration_keys=keys,
            ))
    return result
