"""Text reports mirroring the demonstration's visual panels.

Each function renders one of the demo's views as a plain-text table:

* :func:`enumerate_report` -- Figure 2, basic candidate recommendation;
* :func:`evaluate_report` -- Figure 3, cost of a configuration;
* :func:`candidate_report` / :func:`dag_report` -- Figure 4, the basic
  and generalized candidates and the generalization DAG;
* :func:`recommendation_report` -- Figure 5, analysis of the
  recommendation (per-query costs, sizes, DDL).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.advisor.advisor import Recommendation
from repro.advisor.analysis import QueryCostComparison, RecommendationAnalysis
from repro.advisor.candidates import CandidateSet
from repro.advisor.dag import GeneralizationDag
from repro.optimizer.explain import EnumerateIndexesResult, EvaluateIndexesResult


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 min_width: int = 8) -> str:
    """Render a simple fixed-width text table."""
    columns = len(headers)
    widths = [max(min_width, len(str(headers[i]))) for i in range(columns)]
    normalized_rows: List[List[str]] = []
    for row in rows:
        cells = [_format_cell(cell) for cell in row]
        while len(cells) < columns:
            cells.append("")
        normalized_rows.append(cells)
        for i in range(columns):
            widths[i] = max(widths[i], len(cells[i]))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(cells[i]).ljust(widths[i]) for i in range(columns))
    lines = [fmt([str(h) for h in headers]), fmt(["-" * w for w in widths])]
    lines.extend(fmt(cells) for cells in normalized_rows)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


# ----------------------------------------------------------------------
# Figure 2 / Figure 3
# ----------------------------------------------------------------------
def enumerate_report(results: Iterable[EnumerateIndexesResult]) -> str:
    """Per-query basic candidates (the Figure 2 panel)."""
    rows = []
    for result in results:
        if not result.candidates:
            rows.append([result.query.query_id, "(none)", "",
                         result.cost_without_indexes,
                         result.cost_with_universal_indexes])
            continue
        for index, candidate in enumerate(result.candidates):
            rows.append([
                result.query.query_id if index == 0 else "",
                candidate.pattern.to_text(),
                candidate.value_type.value,
                result.cost_without_indexes if index == 0 else "",
                result.cost_with_universal_indexes if index == 0 else "",
            ])
    return render_table(
        ["query", "candidate pattern", "type", "cost (no idx)", "cost (//* idx)"], rows)


def evaluate_report(results: Iterable[EvaluateIndexesResult]) -> str:
    """Per-query cost under a given configuration (the Figure 3 panel)."""
    rows = []
    for result in results:
        used = ", ".join(i.pattern.to_text() for i in result.used_indexes) or "(none)"
        rows.append([result.query.query_id, result.estimated_cost, used])
    return render_table(["query", "estimated cost", "indexes used"], rows)


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
def candidate_report(candidates: CandidateSet) -> str:
    """Basic vs. generalized candidates with their query attribution."""
    rows = []
    for candidate in sorted(candidates, key=lambda c: (c.source, c.pattern.to_text())):
        rows.append([
            candidate.pattern.to_text(),
            candidate.value_type.value,
            candidate.source,
            len(candidate.benefiting_queries),
        ])
    return render_table(["pattern", "type", "source", "#queries"], rows)


def dag_report(dag: GeneralizationDag) -> str:
    """The generalization DAG as an indented tree (Figure 4)."""
    return dag.render()


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def recommendation_report(recommendation: Recommendation,
                          analysis: Optional[RecommendationAnalysis] = None,
                          comparisons: Optional[List[QueryCostComparison]] = None
                          ) -> str:
    """Full recommendation summary: configuration, sizes, per-query costs."""
    sections: List[str] = [recommendation.describe(), ""]
    sections.append("DDL:")
    for ddl in recommendation.ddl_statements():
        sections.append("  " + ddl + ";")
    if analysis is not None:
        comparisons = comparisons if comparisons is not None \
            else analysis.compare_query_costs()
        rows = [[c.query_id, c.cost_no_indexes, c.cost_recommended,
                 c.cost_overtrained, f"{c.speedup_recommended:.2f}x"]
                for c in comparisons]
        sections.append("")
        sections.append(render_table(
            ["query", "no indexes", "recommended", "overtrained", "speedup"], rows))
        summary = analysis.summary()
        sections.append("")
        sections.append(
            f"workload improvement: {summary['improvement_recommended_pct']:.1f}% "
            f"(overtrained bound: {summary['improvement_overtrained_pct']:.1f}%); "
            f"recommended size {summary['recommended_size_bytes'] / 1024:.1f} KiB vs "
            f"overtrained {summary['overtrained_size_bytes'] / 1024:.1f} KiB")
    return "\n".join(sections)
