"""Command-line interface: ``xml-index-advisor``.

Sub-commands mirror the demonstration's flow:

* ``scenarios`` -- list the built-in (database, workload) scenarios;
* ``enumerate`` -- run the Enumerate Indexes mode over a scenario's
  workload (or a single ``--query``) and print the basic candidates;
* ``recommend`` -- run the full advisor under a disk budget and print
  the recommended configuration, its DDL and the Figure 5 analysis;
* ``execute`` -- create the recommended indexes and actually execute the
  workload with and without them (the demo's final step);
* ``tune`` -- run the online tuning loop: observe the workload through a
  monitored executor, report drift, re-advise on the compressed captured
  workload, and apply (or just print, with ``--dry-run``) the migration
  plan.  ``--shift`` additionally replays the held-out XMark queries
  afterwards to demonstrate drift detection and re-convergence;
* ``explain`` -- print the optimizer's chosen plan for each statement,
  and with ``--trace`` execute it and print the per-query span tree
  (parse -> compile -> plan -> route -> scan/index-probe -> residual ->
  extract) with timings;
* ``metrics`` -- run a scenario workload against an instrumented
  executor and export the metrics registry as deterministic JSON or
  Prometheus text;
* ``lint`` -- run the contract analyzer (see :mod:`repro.analysis`) over
  the source tree: snapshot immutability, cache invalidation, escape
  hatch parity, determinism, fault coverage and the observe-only
  telemetry contract.  Exits non-zero on violations (the CI gate).

Example::

    xml-index-advisor recommend --scenario xmark-small --budget-kb 256 \\
        --algorithm top-down
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.advisor.advisor import XmlIndexAdvisor
from repro.advisor.analysis import RecommendationAnalysis
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.executor.measurement import measure_workload
from repro.optimizer.explain import enumerate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.tools.export import recommendation_to_json
from repro.tools.report import (
    candidate_report,
    dag_report,
    enumerate_report,
    recommendation_report,
)
from repro.workloads.loader import build_scenario, list_scenarios
from repro.xquery.model import Workload
from repro.xquery.normalizer import normalize_statement, normalize_workload
from repro.xquery.workload_io import load_workload_file


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="xmark-small",
                        choices=list_scenarios(),
                        help="built-in database + workload to use")
    parser.add_argument("--workload-file", default=None,
                        help="read the workload from a text file instead of "
                             "using the scenario's built-in workload "
                             "(statements separated by ';' or blank lines; "
                             "'-- frequency: N' comments set frequencies)")


def _scenario_workload(args: argparse.Namespace, scenario) -> Workload:
    """The scenario's workload, or the one loaded from --workload-file."""
    if getattr(args, "workload_file", None):
        return load_workload_file(args.workload_file)
    return scenario.workload


def _algorithm(value: str) -> SearchAlgorithm:
    for algorithm in SearchAlgorithm:
        if algorithm.value == value:
            return algorithm
    raise argparse.ArgumentTypeError(f"unknown algorithm {value!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xml-index-advisor",
        description="XML Index Advisor (SIGMOD 2008 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list built-in scenarios")
    scenarios_parser.add_argument("--json", action="store_true",
                                  help="emit the scenario names as a JSON "
                                       "array instead of one per line")

    enum_parser = subparsers.add_parser(
        "enumerate", help="show basic candidate indexes (Enumerate Indexes mode)")
    _add_scenario_argument(enum_parser)
    enum_parser.add_argument("--query", default=None,
                             help="a single XQuery/SQL-XML statement instead of "
                                  "the scenario workload")

    recommend_parser = subparsers.add_parser(
        "recommend", help="run the advisor and print the recommendation")
    _add_scenario_argument(recommend_parser)
    recommend_parser.add_argument("--budget-kb", type=float, default=256.0,
                                  help="disk space budget in KiB (0 = unlimited)")
    recommend_parser.add_argument("--algorithm", type=_algorithm,
                                  default=SearchAlgorithm.GREEDY_HEURISTIC,
                                  help="greedy | greedy-heuristic | top-down")
    recommend_parser.add_argument("--show-dag", action="store_true",
                                  help="also print the generalization DAG")
    recommend_parser.add_argument("--show-candidates", action="store_true",
                                  help="also print the candidate table")
    recommend_parser.add_argument("--json-out", default=None,
                                  help="also write the recommendation (and its "
                                       "analysis) as JSON to this file")

    execute_parser = subparsers.add_parser(
        "execute", help="create the recommended indexes and run the workload")
    _add_scenario_argument(execute_parser)
    execute_parser.add_argument("--budget-kb", type=float, default=256.0)
    execute_parser.add_argument("--algorithm", type=_algorithm,
                                default=SearchAlgorithm.GREEDY_HEURISTIC)

    tune_parser = subparsers.add_parser(
        "tune", help="run the online tuning loop "
                     "(observe -> drift -> advise -> migrate)")
    _add_scenario_argument(tune_parser)
    tune_parser.add_argument("--budget-kb", type=float, default=256.0,
                             help="disk space budget in KiB (0 = unlimited)")
    tune_parser.add_argument("--rounds", type=int, default=3,
                             help="observation rounds (one monitor tick each) "
                                  "before the tuning cycle runs")
    tune_parser.add_argument("--drift-threshold", type=float, default=0.25,
                             help="combined drift score that triggers "
                                  "re-advising")
    tune_parser.add_argument("--cluster-cap", type=int, default=32,
                             help="bound on the compressed advisor input")
    tune_parser.add_argument("--build-budget-kb", type=float, default=0.0,
                             help="per-cycle index build budget in KiB "
                                  "(0 = build everything at once)")
    tune_parser.add_argument("--dry-run", action="store_true",
                             help="report the migration plan without "
                                  "applying it")
    tune_parser.add_argument("--shift", action="store_true",
                             help="after tuning, replay the held-out XMark "
                                  "queries and run a second cycle to "
                                  "demonstrate drift detection")
    tune_parser.add_argument("--shift-rounds", type=int, default=10,
                             help="observation rounds for the --shift phase")
    tune_parser.add_argument("--chaos", action="store_true",
                             help="arm a deterministic fault plan (transient "
                                  "faults at every seam plus one persistent "
                                  "build failure) and show the rollback, "
                                  "retry and recovery machinery at work")

    explain_parser = subparsers.add_parser(
        "explain", help="print the chosen plan for each statement "
                        "(--trace adds the execution span tree)")
    _add_scenario_argument(explain_parser)
    explain_parser.add_argument("--query", default=None,
                                help="a single XQuery/SQL-XML statement "
                                     "instead of the scenario workload")
    explain_parser.add_argument("--trace", action="store_true",
                                help="execute each statement and print the "
                                     "per-query span tree")

    metrics_parser = subparsers.add_parser(
        "metrics", help="run a scenario workload and export the telemetry "
                        "registry")
    _add_scenario_argument(metrics_parser)
    metrics_parser.add_argument("--rounds", type=int, default=1,
                                help="times to run the workload before "
                                     "exporting")
    metrics_parser.add_argument("--format", choices=("json", "prometheus"),
                                default="json", dest="output_format",
                                help="export format")
    metrics_parser.add_argument("--wall", action="store_true",
                                help="include wall-clock metrics (makes the "
                                     "output nondeterministic)")

    lint_parser = subparsers.add_parser(
        "lint", help="statically check the contract annotations "
                     "(snapshot immutability, cache invalidation, "
                     "escape hatches, determinism)")
    lint_parser.add_argument("--format", choices=("text", "json"),
                             default="text", dest="output_format",
                             help="diagnostic output format")
    lint_parser.add_argument("--path", action="append", default=None,
                             help="file or directory to analyze (repeatable; "
                                  "default: the installed repro package)")
    lint_parser.add_argument("--tests-dir", default=None,
                             help="test corpus consulted by the escape-hatch "
                                  "checker (default: tests/ next to src/)")
    return parser


def _budget_bytes(budget_kb: float) -> Optional[float]:
    if budget_kb <= 0:
        return None
    return budget_kb * 1024.0


def _command_scenarios(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        import json

        print(json.dumps(list(list_scenarios()), indent=2))
    else:
        for name in list_scenarios():
            print(name)
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    from repro.executor.executor import QueryExecutor

    scenario = build_scenario(args.scenario)
    if args.query:
        queries = [normalize_statement(args.query, query_id="cli-q1")]
    else:
        workload = _scenario_workload(args, scenario)
        queries = [q for q in normalize_workload(workload) if not q.is_update]
    executor = QueryExecutor(scenario.database)
    for query in queries:
        print(f"-- {query.query_id} --")
        plan = executor.optimizer.optimize(query)
        print(plan.render())
        if args.trace:
            result = executor.execute(query, trace=True)
            print()
            print(result.trace.render())
        print()
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    from repro.executor.executor import QueryExecutor
    from repro.telemetry import MetricsRegistry

    scenario = build_scenario(args.scenario)
    registry = MetricsRegistry()
    executor = QueryExecutor(scenario.database, registry=registry)
    workload = _scenario_workload(args, scenario)
    queries = [q for q in normalize_workload(workload) if not q.is_update]
    for _ in range(max(1, args.rounds)):
        for query in queries:
            executor.execute(query)
    if args.output_format == "prometheus":
        print(registry.to_prometheus(include_wall=args.wall), end="")
    else:
        print(registry.to_json(include_wall=args.wall))
    return 0


def _command_enumerate(args: argparse.Namespace) -> int:
    scenario = build_scenario(args.scenario)
    optimizer = Optimizer(scenario.database)
    if args.query:
        queries = [normalize_statement(args.query, query_id="cli-q1")]
    else:
        workload = _scenario_workload(args, scenario)
        queries = [q for q in normalize_workload(workload) if not q.is_update]
    results = [enumerate_indexes(query, scenario.database, optimizer)
               for query in queries]
    print(enumerate_report(results))
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    scenario = build_scenario(args.scenario)
    parameters = AdvisorParameters(disk_budget_bytes=_budget_bytes(args.budget_kb),
                                   search_algorithm=args.algorithm)
    advisor = XmlIndexAdvisor(scenario.database, parameters)
    recommendation = advisor.recommend(_scenario_workload(args, scenario))
    analysis = RecommendationAnalysis(scenario.database, recommendation)
    if args.show_candidates:
        print(candidate_report(recommendation.candidates))
        print()
    if args.show_dag:
        print(dag_report(recommendation.dag))
        print()
    print(recommendation_report(recommendation, analysis))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(recommendation_to_json(recommendation, analysis))
        print(f"\nwrote JSON recommendation to {args.json_out}")
    return 0


def _command_execute(args: argparse.Namespace) -> int:
    scenario = build_scenario(args.scenario)
    parameters = AdvisorParameters(disk_budget_bytes=_budget_bytes(args.budget_kb),
                                   search_algorithm=args.algorithm)
    advisor = XmlIndexAdvisor(scenario.database, parameters)
    recommendation = advisor.recommend(_scenario_workload(args, scenario))
    print(recommendation.describe())
    print()
    measurements = measure_workload(scenario.database, recommendation.queries,
                                    recommendation.configuration)
    for measurement in measurements.values():
        print(measurement.describe())
    baseline = measurements["no-indexes"].total_seconds
    with_indexes = measurements.get("recommended")
    if with_indexes and with_indexes.total_seconds > 0:
        print(f"actual speedup: {baseline / with_indexes.total_seconds:.2f}x")
    return 0


def _chaos_plan():
    """The ``tune --chaos`` demo plan: background transient faults at
    every seam plus one persistent failure of the first physical index
    build, so a rollback and its retry/recovery are visible."""
    from repro.faults import INDEX_BUILD, FaultPlan, FaultRule

    smoke = FaultPlan.smoke(period=5)
    return FaultPlan(rules=smoke.rules + (
        FaultRule(site=INDEX_BUILD, hits=(1,), transient=False,
                  message="chaos demo: first physical build dies"),))


def _command_tune(args: argparse.Namespace) -> int:
    from repro.faults import inject
    from repro.tuning import TuningController, TuningPolicy
    from repro.workloads.xmark import xmark_unseen_queries

    scenario = build_scenario(args.scenario)
    policy = TuningPolicy(
        drift_threshold=args.drift_threshold,
        cluster_cap=args.cluster_cap,
        disk_budget_bytes=_budget_bytes(args.budget_kb),
        build_budget_bytes=(args.build_budget_kb * 1024.0
                            if args.build_budget_kb > 0 else None),
        dry_run=args.dry_run)
    controller = TuningController(scenario.database, policy=policy)

    workload = _scenario_workload(args, scenario)
    queries = normalize_workload(workload)
    with inject(_chaos_plan()) if args.chaos else _no_faults():
        if args.chaos:
            print("-- chaos mode: deterministic fault plan armed --")
        executed = controller.observe(queries, rounds=max(1, args.rounds))
        print(f"observed {executed} execution(s) of {len(queries)} "
              f"statement(s) over {max(1, args.rounds)} round(s)")
        print(controller.drift_report().describe())
        print()
        event = controller.run_cycle()
        print(event.describe())

        if args.chaos and not args.dry_run:
            # Keep observing and cycling until the containment machinery
            # has recovered from the injected build failure (bounded:
            # the backoff expires after a few observation ticks).
            for _ in range(6):
                if event.applied \
                        and not scenario.database.catalog.pending_builds:
                    break
                controller.observe(queries, rounds=1)
                event = controller.run_cycle()
                print()
                print(event.describe())

        if args.shift:
            shifted = normalize_workload(xmark_unseen_queries())
            executed = controller.observe(shifted,
                                          rounds=max(1, args.shift_rounds))
            print(f"\n-- injected workload shift: observed {executed} "
                  f"execution(s) of {len(shifted)} held-out statement(s) --")
            event = controller.run_cycle()
            print(event.describe())

        print("\naudit trail:")
        print(controller.audit_trail())
        if args.chaos:
            print("\nrobustness report:")
            print(controller.robustness_report().describe())
    live = sorted(controller.live_configuration_keys)
    print(f"\nlive configuration ({len(live)} index(es)):")
    for pattern, value_type in live:
        print(f"  {pattern} [{value_type}]")
    return 0


class _no_faults:
    """Null context for the non-chaos path (harness stays disarmed)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


def _command_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import analyze_paths, render_json, render_text

    paths = [Path(p) for p in args.path] if args.path else None
    tests_dir = Path(args.tests_dir) if args.tests_dir else None
    context = analyze_paths(paths=paths, tests_dir=tests_dir)
    if args.output_format == "json":
        print(render_json(context.diagnostics, len(context.files)))
    else:
        print(render_text(context.diagnostics, len(context.files)))
    return 1 if context.diagnostics else 0


_COMMANDS = {
    "scenarios": _command_scenarios,
    "enumerate": _command_enumerate,
    "recommend": _command_recommend,
    "execute": _command_execute,
    "explain": _command_explain,
    "metrics": _command_metrics,
    "tune": _command_tune,
    "lint": _command_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also installed as the ``xml-index-advisor`` script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
