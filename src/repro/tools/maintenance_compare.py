"""Incremental-vs-rebuild maintenance comparison (shared protocol).

One implementation of the E6 maintenance measurement used by three
consumers -- the E6 benchmark (``benchmarks/bench_e6_maintenance.py``),
the tier-1 ``bench_smoke`` guard (``tests/test_bench_smoke.py``), and
the perf-trajectory recorder (``tools/bench_record.py``) -- so the
measurement protocol cannot silently diverge between the guard, the
bench and the recorded numbers.

Protocol: two XMark databases with identical documents are loaded --
one with delta-propagation maintenance
(``use_incremental_maintenance=True``, the default), one with the
legacy teardown-and-rebuild escape hatch.  Both prime their derived
state (path summary, statistics synopsis, one configured physical
index), then the same stream of freshly generated documents is added to
each; after every add the derived state is brought current again:

* **incremental** -- the collection folds the document's delta into the
  summary and statistics accumulator, and the physical index merges the
  document's entries from the delta journal;
* **rebuild** -- the collection rebuilds summary and statistics from
  all documents and the physical index is rebuilt from scratch,

and the wall-clock per mode is compared.  Afterwards the derived state
of the two modes is checked for byte-identity (canonical summary state,
statistics synopsis equality, index entry lists), which is the
correctness half of the acceptance criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.index.definition import IndexDefinition
from repro.index.physical import PhysicalPathIndex, build_physical_index
from repro.storage.document_store import XmlDatabase
from repro.telemetry import wall_clock
from repro.workloads.xmark import XMarkConfig, generate_xmark_database
from repro.xquery.model import ValueType

#: The index the maintenance comparison keeps configured: person ids are
#: dense (one entry per person element), so the index sees real
#: per-document merge work.
DEFAULT_INDEX_PATTERN = "/site/people/person/@id"


@dataclass
class MaintenanceComparison:
    """Outcome of one incremental-vs-rebuild maintenance run."""

    base_documents: int
    documents_added: int
    incremental_seconds: float
    rebuild_seconds: float
    #: Summary, statistics and index entries byte-identical across modes
    #: after the full add stream.
    identical: bool
    index_entries: int

    @property
    def ratio(self) -> float:
        """How many times faster the incremental path kept derived state
        current, per document add (higher is better)."""
        return self.rebuild_seconds / max(self.incremental_seconds, 1e-9)


def _prime(database: XmlDatabase,
           definition: IndexDefinition) -> PhysicalPathIndex:
    collection = database.collection("xmark")
    collection.path_summary
    collection.statistics
    database.statistics
    return build_physical_index(definition, database)


def _touch_derived(database: XmlDatabase) -> None:
    """Force the per-collection derived state current (summary then
    statistics -- the same objects both modes maintain)."""
    collection = database.collection("xmark")
    collection.path_summary
    collection.statistics


def compare_maintenance_modes(
        scale: float = 0.25,
        seed: int = 42,
        documents_to_add: Optional[int] = None,
        index_pattern: str = DEFAULT_INDEX_PATTERN) -> MaintenanceComparison:
    """Run the incremental-vs-rebuild document-add comparison.

    ``documents_to_add`` defaults to a quarter of the base database
    (at least 4 documents).  Returns the timings and the byte-identity
    verdict.
    """
    config = XMarkConfig(scale=scale, seed=seed)
    incremental_db = generate_xmark_database(config, "maint-incremental")
    rebuild_db = generate_xmark_database(
        config, "maint-rebuild", use_incremental_maintenance=False)

    # The add stream: documents the base load has not seen (same shape,
    # different seed), generated once and twinned so both modes ingest
    # byte-identical trees.
    added = documents_to_add
    if added is None:
        added = max(4, config.document_count() // 4)
    donor_config = XMarkConfig(scale=scale, seed=seed + 1)
    donors = [generate_xmark_database(donor_config, f"maint-donor-{side}")
              for side in ("a", "b")]
    streams = [donor.collection("xmark").documents[:added] for donor in donors]
    if len(streams[0]) < added:
        added = len(streams[0])

    definition = IndexDefinition.create(index_pattern, ValueType.VARCHAR)
    incremental_index = _prime(incremental_db, definition)
    rebuild_index = _prime(rebuild_db, definition)

    incremental_collection = incremental_db.collection("xmark")
    incremental_seconds = 0.0
    for document in streams[0][:added]:
        version = incremental_collection.version
        start = wall_clock()
        incremental_collection.add_document(document)
        _touch_derived(incremental_db)
        for delta in incremental_collection.deltas_since(version):
            incremental_index.apply_collection_delta(delta)
        incremental_seconds += wall_clock() - start

    rebuild_seconds = 0.0
    for document in streams[1][:added]:
        start = wall_clock()
        rebuild_db.collection("xmark").add_document(document)
        _touch_derived(rebuild_db)
        rebuild_index = build_physical_index(definition, rebuild_db)
        rebuild_seconds += wall_clock() - start

    identical = (
        incremental_collection.path_summary.canonical_state()
        == rebuild_db.collection("xmark").path_summary.canonical_state()
        and incremental_collection.statistics
        == rebuild_db.collection("xmark").statistics
        and incremental_index.entries == rebuild_index.entries)

    return MaintenanceComparison(
        base_documents=config.document_count(),
        documents_added=added,
        incremental_seconds=incremental_seconds,
        rebuild_seconds=rebuild_seconds,
        identical=identical,
        index_entries=incremental_index.entry_count,
    )
