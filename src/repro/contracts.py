"""Machine-checked contracts: the declarations the analyzer enforces.

The repository's performance work rests on a handful of invariants that
used to live only in ROADMAP.md prose: snapshot objects are immutable
once built, memoized state is only read behind a revalidation point,
every ``use_*`` escape hatch keeps two live code paths, and the tuning
subsystem never touches the wall clock.  This module turns those
invariants into *declarations that live next to the code they govern*:

* :func:`snapshot_contract` -- registers a class as a snapshot and
  names the methods allowed to write it (its *builders*) plus any memo
  attributes exempt from immutability (lazily-populated caches keyed to
  the snapshot's own content).
* :func:`builder` -- registers a free function (or a method of a
  non-snapshot class) as a builder: a construction context in which
  snapshot instances may still be assembled.
* :func:`cache_contract` -- declares a class's memo attributes and the
  invalidation discipline each one follows (see :data:`MemoPolicy`).
* :func:`escape_hatch` -- declares a ``use_*`` compatibility flag that
  must branch to two live code paths and be exercised by tests.
* :func:`deterministic_package` -- declares a package in which wall
  clocks, unseeded randomness and unsorted set iteration are forbidden.
* :func:`injection_site` -- declares a named fault-injection site: a
  seam at which :mod:`repro.faults` may raise a scripted failure.  The
  fault-coverage checker requires every catalog-mutating seam to
  consult a registered site, and every registered site to be consulted
  somewhere in the tree.
* :func:`observe_only_package` -- declares a non-governing telemetry
  package: it may record what the system did but may not import (and
  therefore cannot mutate) the governed packages of its tree, and
  instrumentation sites in governed code may not smuggle governed
  mutations into its recording calls.  Enforced by the telemetry
  checker.
* :func:`wall_clock_module` -- declares the single audited module
  allowed to read ``time.*`` clocks; the determinism checker flags any
  other direct clock read anywhere under the declaring tree's
  top-level package.

The declarations are consumed twice:

1. **Statically** by :mod:`repro.analysis` -- the ``xml-index-advisor
   lint`` checkers parse these decorator calls out of the source tree
   (no imports) and verify the code against them.
2. **At runtime**, optionally -- when the environment variable
   ``REPRO_FREEZE_SNAPSHOTS=1`` is set *at import time*, every
   registered non-frozen snapshot class gets a ``__setattr__`` /
   ``__delattr__`` trap that raises :class:`SnapshotMutationError`
   unless a registered builder is executing on the current thread.
   Frozen dataclasses already enforce this themselves and are
   registered without instrumentation.  Container-level mutation
   (``snapshot.attr.append(...)``) is *not* trapped at runtime; the
   static snapshot checker covers that case.

The guard is installed only when the environment variable is set, so
the default hot path pays nothing.
"""

from __future__ import annotations

import functools
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Mapping, Tuple, Type

__all__ = [
    "FREEZE_ENV_VAR",
    "FREEZE_SNAPSHOTS",
    "SnapshotMutationError",
    "SnapshotContract",
    "ContractRegistry",
    "REGISTRY",
    "snapshot_contract",
    "cache_contract",
    "builder",
    "escape_hatch",
    "deterministic_package",
    "injection_site",
    "observe_only_package",
    "wall_clock_module",
    "building",
]

#: Environment variable that switches runtime snapshot freezing on.
FREEZE_ENV_VAR = "REPRO_FREEZE_SNAPSHOTS"

#: Read once at import: runtime freeze mode for this process.
FREEZE_SNAPSHOTS = os.environ.get(FREEZE_ENV_VAR, "").strip() not in ("", "0")


class SnapshotMutationError(AttributeError):
    """A registered snapshot was mutated outside a registered builder."""


@dataclass(frozen=True)
class SnapshotContract:
    """The declared write-surface of one snapshot class."""

    name: str
    module: str
    #: Methods (besides ``__init__``) allowed to write snapshot state.
    builders: Tuple[str, ...] = ()
    #: The subset of ``builders`` that mutate their *receiver* when
    #: called (``stats.merge(other)``); the rest assemble fresh
    #: instances (``stats.copy()``) and may be called from anywhere.
    mutators: Tuple[str, ...] = ()
    #: Attributes exempt from immutability: content-keyed memo caches
    #: that live and die with the snapshot object itself.
    memo_attrs: FrozenSet[str] = frozenset()


@dataclass
class ContractRegistry:
    """Process-wide record of every contract declaration."""

    snapshots: Dict[str, SnapshotContract] = field(default_factory=dict)
    builder_functions: Dict[Tuple[str, str], Callable[..., Any]] = \
        field(default_factory=dict)
    caches: Dict[Tuple[str, str], Mapping[str, Mapping[str, Any]]] = \
        field(default_factory=dict)
    escape_hatches: Dict[str, str] = field(default_factory=dict)
    deterministic_packages: Tuple[str, ...] = ()
    injection_sites: Dict[str, str] = field(default_factory=dict)
    observe_only_packages: Dict[str, str] = field(default_factory=dict)
    wall_clock_modules: Tuple[str, ...] = ()


#: The process-wide registry (populated as governed modules import).
REGISTRY = ContractRegistry()

# Thread-local build-phase depth: nonzero while any registered builder
# (or a registered snapshot's __init__) is executing on this thread.
_STATE = threading.local()


def _depth() -> int:
    return getattr(_STATE, "depth", 0)


class building:
    """Context manager marking a build phase on the current thread.

    Inside the ``with`` block, registered snapshot classes accept
    attribute writes even under ``REPRO_FREEZE_SNAPSHOTS=1``.  Used by
    the wrapped builders themselves; available to tests that need to
    assemble snapshots by hand.
    """

    def __enter__(self) -> "building":
        _STATE.depth = _depth() + 1
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _STATE.depth = _depth() - 1


def _wrap_build_phase(func: Callable[..., Any]) -> Callable[..., Any]:
    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        _STATE.depth = _depth() + 1
        try:
            return func(*args, **kwargs)
        finally:
            _STATE.depth = _depth() - 1
    return wrapper


def _is_frozen_dataclass(cls: type) -> bool:
    params = getattr(cls, "__dataclass_params__", None)
    return bool(params is not None and params.frozen)


def _install_freeze_guard(cls: type, contract: SnapshotContract) -> None:
    """Trap attribute writes on ``cls`` outside registered builders."""
    original_setattr = cls.__setattr__
    original_delattr = cls.__delattr__

    def _guard(self: Any, name: str) -> None:
        if _depth() == 0 and name not in contract.memo_attrs:
            raise SnapshotMutationError(
                f"{cls.__name__}.{name} written outside a registered "
                f"builder while {FREEZE_ENV_VAR} is set; allowed "
                f"builders: __init__, {', '.join(contract.builders) or '-'}")

    def guarded_setattr(self: Any, name: str, value: Any) -> None:
        _guard(self, name)
        original_setattr(self, name, value)

    def guarded_delattr(self: Any, name: str) -> None:
        _guard(self, name)
        original_delattr(self, name)

    cls.__setattr__ = guarded_setattr  # type: ignore[method-assign]
    cls.__delattr__ = guarded_delattr  # type: ignore[method-assign]

    for method_name in ("__init__",) + contract.builders:
        method = cls.__dict__.get(method_name)
        if method is None:
            continue
        if isinstance(method, property):
            wrapped = property(_wrap_build_phase(method.fget)
                               if method.fget else None,
                               method.fset, method.fdel, method.__doc__)
            setattr(cls, method_name, wrapped)
        elif isinstance(method, (staticmethod, classmethod)):
            setattr(cls, method_name,
                    type(method)(_wrap_build_phase(method.__func__)))
        elif callable(method):
            setattr(cls, method_name, _wrap_build_phase(method))


def snapshot_contract(*, builders: Iterable[str] = (),
                      mutators: Iterable[str] = (),
                      memo_attrs: Iterable[str] = ()) -> Callable[[type], type]:
    """Class decorator registering a snapshot class and its builders.

    Apply *above* ``@dataclass`` so the decorated object is the final
    class.  ``builders`` are the methods allowed to write snapshot
    state (their writes may target ``self`` or freshly constructed
    instances); ``mutators`` is the subset that mutates its receiver
    and therefore may itself only be *called* from a build phase;
    ``memo_attrs`` are content-keyed caches exempt from immutability.
    """
    builders_t = tuple(builders)
    mutators_t = tuple(mutators)
    memo = frozenset(memo_attrs)

    def decorate(cls: Type[Any]) -> Type[Any]:
        contract = SnapshotContract(name=cls.__name__, module=cls.__module__,
                                    builders=builders_t, mutators=mutators_t,
                                    memo_attrs=memo)
        REGISTRY.snapshots[cls.__name__] = contract
        if FREEZE_SNAPSHOTS and not _is_frozen_dataclass(cls):
            _install_freeze_guard(cls, contract)
        return cls

    return decorate


def cache_contract(*, memos: Mapping[str, Mapping[str, Any]]) \
        -> Callable[[type], type]:
    """Class decorator declaring memo attributes and their policies.

    ``memos`` maps attribute name to a policy mapping with a
    ``"policy"`` key:

    ``{"policy": "revalidate", "revalidators": (...)}``
        The memo is only valid behind a signature/version check.  It
        may be touched from the named revalidator methods, methods
        that directly call one, and private helpers reachable only
        through those.
    ``{"policy": "push", "readers": (...), "refreshers": (...)}``
        The memo is kept fresh by change notifications: only the named
        readers and refreshers (plus ``__init__``) may touch it.
    ``{"policy": "object-keyed"}``
        The memo's validity is tied to its (immutable or
        rebuilt-not-mutated) owner object; reads need no revalidation.
    ``{"policy": "static"}``
        The memo is data-independent (derived from construction
        arguments only); reads need no revalidation.

    Purely declarative at runtime; enforced by the static
    ``cache-invalidation`` checker.
    """
    frozen_memos = {attr: dict(policy) for attr, policy in memos.items()}

    def decorate(cls: Type[Any]) -> Type[Any]:
        REGISTRY.caches[(cls.__module__, cls.__name__)] = frozen_memos
        return cls

    return decorate


def builder(func: Callable[..., Any]) -> Callable[..., Any]:
    """Register a function as a snapshot construction context.

    Inside it (dynamically, on the current thread) registered snapshot
    instances may be written even under ``REPRO_FREEZE_SNAPSHOTS=1``.
    Statically, the snapshot checker permits snapshot writes in its
    body.  Apply *below* ``@property`` / ``@staticmethod`` (closest to
    the plain function).
    """
    REGISTRY.builder_functions[(func.__module__, func.__qualname__)] = func
    if not FREEZE_SNAPSHOTS:
        return func
    return _wrap_build_phase(func)


def escape_hatch(name: str, description: str = "") -> str:
    """Declare a ``use_*`` compatibility flag.

    The escape-hatch checker verifies the flag branches to two live
    code paths somewhere in the tree and is referenced by at least one
    test under ``tests/``.  Returns ``name`` so the call can double as
    a constant definition.
    """
    REGISTRY.escape_hatches[name] = description
    return name


def deterministic_package(name: str) -> str:
    """Declare a package that must be wall-clock and hash-order free.

    Modules under ``name`` may not call ``time.time``-style clocks,
    ``datetime.now`` or the unseeded module-level ``random`` API, and
    may not iterate bare sets into emitted orderings without
    ``sorted()``.  Enforced by the determinism checker.
    """
    if name not in REGISTRY.deterministic_packages:
        REGISTRY.deterministic_packages = \
            REGISTRY.deterministic_packages + (name,)
    return name


def observe_only_package(name: str, description: str = "") -> str:
    """Declare a package that observes but never governs.

    Modules under ``name`` may record what the system did -- counters,
    spans, cost samples -- but may not import (and therefore cannot
    call or mutate) the governed packages of the same top-level tree,
    other than the contract declarations themselves.  The telemetry
    checker enforces the import direction statically, requires fixed
    literal histogram bucket bounds (no data-dependent bucketing), and
    verifies instrumentation sites in governed code never pass a
    governed mutation into a recording call.  Returns ``name`` so the
    call can double as a constant definition.
    """
    REGISTRY.observe_only_packages[name] = description
    return name


def wall_clock_module(name: str) -> str:
    """Declare an audited wall-clock module.

    Every direct ``time.*`` clock read in the tree must live in a
    module declared here; the determinism checker flags any other
    ``time.time``-style call in any module under the declaring tree's
    top-level package.  Deterministic packages remain stricter: no
    wall clocks at all, not even through the audited module.  Returns
    ``name`` so the call can double as a constant definition.
    """
    if name not in REGISTRY.wall_clock_modules:
        REGISTRY.wall_clock_modules = REGISTRY.wall_clock_modules + (name,)
    return name


def injection_site(name: str, description: str = "") -> str:
    """Declare a named fault-injection site.

    A site is a seam -- an index build, a journal replay, a migration
    commit point -- at which the deterministic fault harness
    (:mod:`repro.faults`) may raise a scripted failure.  Declaring the
    site here makes it part of the failure contract: the fault-coverage
    checker verifies that every catalog-mutating function consults a
    site via ``fault_point``/``guarded_fault_point`` and that every
    declared site is consulted somewhere in the tree.  Returns ``name``
    so the call can double as a constant definition.
    """
    REGISTRY.injection_sites[name] = description
    return name
