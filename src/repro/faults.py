"""Deterministic fault injection for the tuning and serving stack.

The online advisor is only production-credible if its loop survives its
own failures: an index build that dies mid-migration, a journal replay
that cannot catch an index up, a statistics rebuild that falls over.
This module provides the scripted-failure half of that story; the
containment half (transactional migrations, degraded-mode execution,
quarantine) lives in :mod:`repro.tuning.controller` and
:mod:`repro.executor.executor`.

Design:

* **Named injection sites.**  Every seam that can fail is declared with
  :func:`repro.contracts.injection_site` and consulted at runtime via
  :func:`fault_point` (raise through) or :func:`guarded_fault_point`
  (absorb transient faults in place with bounded retries).  The
  fault-coverage lint checker keeps the set of seams and the set of
  declared sites in lockstep.
* **Logical-step time only.**  A :class:`FaultPlan` schedules failures
  against per-site *hit counters* -- "fail the 3rd index build", never
  "fail after 100ms".  The module is registered as a
  ``deterministic_package``: no wall clocks, no unseeded randomness,
  so a plan replays byte-identically.
* **Two failure severities.**  :class:`TransientFaultError` models a
  failure that succeeds on retry (an allocation blip); seams absorb it
  locally via :func:`guarded_fault_point`.  :class:`FaultError` models
  a persistent failure; it propagates to the containment layers, which
  must roll back, fall back, or quarantine.

Arming the harness:

* programmatically -- ``with faults.inject(plan) as injector: ...``
* process-wide -- ``REPRO_FAULTS=smoke`` in the environment (read at
  import) installs :meth:`FaultPlan.smoke`, a canned plan that raises a
  transient fault at every Nth hit of every registered site.  Because
  every seam absorbs transients in place, the whole tier-1 suite must
  pass unchanged under it -- CI runs exactly that.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.contracts import deterministic_package, injection_site
from repro.telemetry import global_registry

deterministic_package("repro.faults")

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultError",
    "TransientFaultError",
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
    "FaultInjector",
    "RobustnessReport",
    "INDEX_BUILD",
    "INDEX_DROP",
    "INDEX_DELTA_APPLY",
    "JOURNAL_REPLAY",
    "STATS_REBUILD",
    "SNAPSHOT_PUBLISH",
    "MIGRATION_COMMIT",
    "registered_sites",
    "active_injector",
    "install_plan",
    "clear_plan",
    "inject",
    "fault_point",
    "guarded_fault_point",
    "plan_from_env",
]

#: Environment variable that arms a process-wide fault plan at import.
FAULTS_ENV_VAR = "REPRO_FAULTS"

# The injection-site registry: one declaration per seam.  Constants are
# exported so plans and tests can name sites without string literals;
# the seams themselves consult the sites by their literal names, which
# is what the fault-coverage checker matches against.
INDEX_BUILD = injection_site(
    "index.build", "materialization of a physical path index")
INDEX_DROP = injection_site(
    "index.drop", "removal of a physical index from catalog and executor")
INDEX_DELTA_APPLY = injection_site(
    "index.delta_apply", "per-delta incremental maintenance of an index")
JOURNAL_REPLAY = injection_site(
    "journal.replay", "executor catch-up replay from collection delta logs")
STATS_REBUILD = injection_site(
    "stats.rebuild", "statistics synopsis (re)build for a collection")
SNAPSHOT_PUBLISH = injection_site(
    "snapshot.publish", "publication of a derived snapshot into its cache")
MIGRATION_COMMIT = injection_site(
    "migration.commit", "commit point of a tuning migration plan")


def registered_sites() -> Tuple[str, ...]:
    """All declared injection-site names, sorted."""
    from repro.contracts import REGISTRY
    return tuple(sorted(REGISTRY.injection_sites))


class FaultError(Exception):
    """An injected persistent fault.

    Retrying the failed operation at the seam will not help; a
    containment layer must roll back, fall back, or quarantine.
    """


class TransientFaultError(FaultError):
    """An injected transient fault: retrying at the seam succeeds."""


@dataclass(frozen=True)
class FaultRule:
    """Schedule failures for one site against its logical hit counter."""

    site: str
    #: 1-based hit numbers that fail (single-shot faults).
    hits: Tuple[int, ...] = ()
    #: Additionally fail every ``every``-th hit (0 = never).
    every: int = 0
    #: Transient faults are absorbed at the seam; persistent faults
    #: propagate to the containment layers.
    transient: bool = True
    message: str = ""

    def __post_init__(self) -> None:
        if any(hit < 1 for hit in self.hits):
            raise ValueError(f"fault rule hits must be >= 1, got {self.hits}")
        if self.every < 0:
            raise ValueError(f"fault rule 'every' must be >= 0, got {self.every}")

    def fires_at(self, hit: int) -> bool:
        if hit in self.hits:
            return True
        return self.every > 0 and hit % self.every == 0


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of failures, keyed by injection site."""

    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        known = registered_sites()
        for rule in self.rules:
            if rule.site not in known:
                raise ValueError(
                    f"fault rule targets unregistered site {rule.site!r}; "
                    f"registered sites: {', '.join(known)}")

    def rules_for(self, site: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.site == site)

    @classmethod
    def fail_hit(cls, site: str, hit: int = 1, *,
                 transient: bool = False) -> "FaultPlan":
        """A plan with a single fault at one hit of one site."""
        return cls(rules=(FaultRule(site=site, hits=(hit,),
                                    transient=transient),))

    @classmethod
    def smoke(cls, period: int = 7) -> "FaultPlan":
        """Transient fault at every ``period``-th hit of every site.

        Every seam absorbs transient faults in place, so this plan must
        be invisible: the whole tier-1 suite passes unchanged under it.
        ``period`` must be >= 2 so a retry lands on a passing hit.
        """
        if period < 2:
            raise ValueError(f"smoke period must be >= 2, got {period}")
        return cls(rules=tuple(FaultRule(site=site, every=period)
                               for site in registered_sites()))


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector actually raised."""

    site: str
    hit: int
    transient: bool

    def describe(self) -> str:
        kind = "transient" if self.transient else "persistent"
        return f"{self.site}@{self.hit} ({kind})"


class FaultInjector:
    """Counts hits per site and raises faults the plan schedules."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._hits: Dict[str, int] = {}
        #: Every fault raised, in injection order.
        self.injected: List[InjectedFault] = []
        #: Transient faults absorbed by seam-local retries, per site.
        self.absorbed: Dict[str, int] = {}

    def hit_count(self, site: str) -> int:
        return self._hits.get(site, 0)

    def consult(self, site: str) -> None:
        """Count one hit of ``site``; raise if the plan schedules it."""
        count = self._hits.get(site, 0) + 1
        self._hits[site] = count
        for rule in self.plan.rules_for(site):
            if rule.fires_at(count):
                record = InjectedFault(site=site, hit=count,
                                       transient=rule.transient)
                self.injected.append(record)
                global_registry().counter("faults.injected").inc()
                error = TransientFaultError if rule.transient else FaultError
                raise error(rule.message
                            or f"injected fault: {record.describe()}")

    def note_absorbed(self, site: str) -> None:
        self.absorbed[site] = self.absorbed.get(site, 0) + 1
        global_registry().counter("faults.absorbed").inc()

    def summary(self) -> Tuple[str, ...]:
        return tuple(record.describe() for record in self.injected)

    @property
    def absorbed_total(self) -> int:
        return sum(self.absorbed.values())


#: The process-wide active injector (None = harness disarmed; the
#: fault_point fast path is then a single comparison).
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    return _ACTIVE


def install_plan(plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` process-wide; returns the live injector."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan)
    return _ACTIVE


def clear_plan() -> None:
    global _ACTIVE
    _ACTIVE = None


class inject:
    """Context manager arming a plan for a scoped block.

    ``with faults.inject(plan) as injector:`` -- restores the previous
    injector (usually None) on exit, so tests nest safely.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.injector = FaultInjector(plan)
        self._previous: Optional[FaultInjector] = None

    def __enter__(self) -> FaultInjector:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.injector
        return self.injector

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def fault_point(site: str) -> None:
    """Consult ``site``: raise if the active plan schedules a fault.

    No-op (one comparison) when the harness is disarmed.  Seams that
    can absorb transient faults should use :func:`guarded_fault_point`
    instead.
    """
    if _ACTIVE is not None:
        _ACTIVE.consult(site)


def guarded_fault_point(site: str, max_retries: int = 2) -> None:
    """Consult ``site``, absorbing transient faults with bounded retries.

    Each retry consults the site again (consuming another hit of the
    logical counter).  A persistent fault -- or a transient one that
    keeps firing past ``max_retries`` -- propagates to the caller's
    containment layer.
    """
    if _ACTIVE is None:
        return
    attempts = 0
    while True:
        try:
            _ACTIVE.consult(site)
            return
        except TransientFaultError:
            attempts += 1
            if attempts > max_retries:
                raise
            _ACTIVE.note_absorbed(site)


def plan_from_env(value: str) -> Optional[FaultPlan]:
    """Parse ``REPRO_FAULTS``: empty/"0" = off, "smoke" = canned plan.

    Anything else is an inline spec ``site:hit[:persistent][,...]``,
    e.g. ``index.build:2:persistent,stats.rebuild:1``.
    """
    value = value.strip()
    if not value or value == "0":
        return None
    if value == "smoke":
        return FaultPlan.smoke()
    rules = []
    for part in value.split(","):
        fields = part.strip().split(":")
        if len(fields) not in (2, 3):
            raise ValueError(
                f"bad {FAULTS_ENV_VAR} spec {part!r}; expected "
                "'site:hit[:persistent]' or 'smoke'")
        site, hit = fields[0], int(fields[1])
        transient = len(fields) < 3 or fields[2] != "persistent"
        rules.append(FaultRule(site=site, hits=(hit,), transient=transient))
    return FaultPlan(rules=tuple(rules))


@dataclass(frozen=True)
class RobustnessReport:
    """What the failure-containment machinery did, for the audit trail."""

    #: Faults the harness injected ("site@hit (kind)" strings).
    faults_injected: Tuple[str, ...] = ()
    #: Transient faults absorbed by seam-local retries.
    seam_retries: int = 0
    #: Index builds that failed while staging a migration plan.
    build_failures: int = 0
    #: Migration plans rolled back to the pre-plan configuration.
    rollbacks: int = 0
    #: Degraded-mode events the executor surfaced (fallback scans,
    #: unusable marks, rebuild recoveries, repairs).
    fallbacks: Tuple[str, ...] = ()
    #: Definitions quarantined after repeated build failures.
    quarantined: Tuple[str, ...] = ()
    #: Physical indexes currently marked unusable.
    unusable: Tuple[str, ...] = ()

    @property
    def is_clean(self) -> bool:
        return not (self.faults_injected or self.seam_retries
                    or self.build_failures or self.rollbacks
                    or self.fallbacks or self.quarantined or self.unusable)

    def describe(self) -> str:
        if self.is_clean:
            return "robustness: clean (no faults, no containment activity)"
        lines = ["robustness:"]
        if self.faults_injected:
            lines.append(f"  faults injected ({len(self.faults_injected)}): "
                         + ", ".join(self.faults_injected))
        if self.seam_retries:
            lines.append(f"  transient faults absorbed at seams: "
                         f"{self.seam_retries}")
        if self.build_failures:
            lines.append(f"  staging build failures: {self.build_failures}")
        if self.rollbacks:
            lines.append(f"  migration rollbacks: {self.rollbacks}")
        for event in self.fallbacks:
            lines.append(f"  fallback: {event}")
        for entry in self.quarantined:
            lines.append(f"  quarantined: {entry}")
        for entry in self.unusable:
            lines.append(f"  unusable: {entry}")
        return "\n".join(lines)


_env_plan = plan_from_env(os.environ.get(FAULTS_ENV_VAR, ""))
if _env_plan is not None:
    install_plan(_env_plan)
