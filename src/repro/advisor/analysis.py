"""Recommendation analysis (Section 3, Figure 5).

The demonstration lets the user analyze a recommendation by comparing,
for every workload query, three estimated costs:

1. the original cost with **no indexes**,
2. the cost with the **recommended** configuration,
3. the cost with the **overtrained** configuration consisting of *all*
   basic candidate indexes enumerated for the workload (maximum possible
   benefit for the training workload, usually far over budget).

It also lets the user add queries beyond the input workload to see how
the recommended (generalized) configuration serves unseen queries, and
to edit the configuration (add/remove indexes) and see the effect.  This
module provides all of that programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.advisor.advisor import Recommendation
from repro.advisor.benefit import ConfigurationBenefit, ConfigurationEvaluator
from repro.advisor.config import AdvisorParameters
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.optimizer.explain import evaluate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.storage.document_store import XmlDatabase
from repro.xquery.model import NormalizedQuery, Workload
from repro.xquery.normalizer import normalize_statement, normalize_workload


@dataclass
class QueryCostComparison:
    """Per-query cost triple shown by the analysis tool (Figure 5)."""

    query_id: str
    cost_no_indexes: float
    cost_recommended: float
    cost_overtrained: float
    recommended_uses_indexes: bool

    @property
    def speedup_recommended(self) -> float:
        """Estimated cost ratio no-indexes / recommended (>= 1 is good)."""
        if self.cost_recommended <= 0:
            return float("inf")
        return self.cost_no_indexes / self.cost_recommended

    @property
    def speedup_overtrained(self) -> float:
        if self.cost_overtrained <= 0:
            return float("inf")
        return self.cost_no_indexes / self.cost_overtrained

    @property
    def benefit_captured(self) -> float:
        """Fraction of the overtrained configuration's cost reduction that
        the recommended configuration achieves for this query (1.0 when the
        recommendation is as good as overtraining)."""
        max_gain = self.cost_no_indexes - self.cost_overtrained
        if max_gain <= 1e-9:
            return 1.0
        actual_gain = self.cost_no_indexes - self.cost_recommended
        return max(0.0, min(1.0, actual_gain / max_gain))


class RecommendationAnalysis:
    """Analysis and what-if tooling over one recommendation."""

    def __init__(self, database: XmlDatabase, recommendation: Recommendation,
                 parameters: Optional[AdvisorParameters] = None) -> None:
        self.database = database
        self.recommendation = recommendation
        self.parameters = parameters or recommendation.parameters
        self.optimizer = Optimizer(
            database, self.parameters.cost_parameters,
            use_collection_costing=self.parameters.use_collection_costing)
        self._overtrained = self._build_overtrained_configuration()

    # ------------------------------------------------------------------
    # Configurations under comparison
    # ------------------------------------------------------------------
    @property
    def recommended_configuration(self) -> IndexConfiguration:
        return self.recommendation.configuration

    @property
    def overtrained_configuration(self) -> IndexConfiguration:
        """All basic candidates enumerated for the workload."""
        return self._overtrained

    def _build_overtrained_configuration(self) -> IndexConfiguration:
        configuration = IndexConfiguration(name="overtrained")
        for candidate in self.recommendation.candidates.basic_candidates:
            configuration.add(candidate.to_definition())
        return configuration

    # ------------------------------------------------------------------
    # Figure 5: per-query cost comparison
    # ------------------------------------------------------------------
    def compare_query_costs(self,
                            queries: Optional[Sequence[NormalizedQuery]] = None
                            ) -> List[QueryCostComparison]:
        """The no-index / recommended / overtrained cost triple per query."""
        queries = list(queries) if queries is not None else [
            q for q in self.recommendation.queries if not q.is_update]
        comparisons: List[QueryCostComparison] = []
        for query in queries:
            if query.is_update:
                continue
            no_index = self.optimizer.optimize(query, candidate_indexes=[]).total_cost
            recommended = evaluate_indexes(query, self.database,
                                           self.recommended_configuration,
                                           optimizer=self.optimizer)
            overtrained = evaluate_indexes(query, self.database,
                                           self.overtrained_configuration,
                                           optimizer=self.optimizer)
            comparisons.append(QueryCostComparison(
                query_id=query.query_id,
                cost_no_indexes=no_index,
                cost_recommended=recommended.estimated_cost,
                cost_overtrained=overtrained.estimated_cost,
                recommended_uses_indexes=bool(recommended.used_indexes),
            ))
        return comparisons

    # ------------------------------------------------------------------
    # Unseen queries ("add more queries beyond the input workload")
    # ------------------------------------------------------------------
    def evaluate_additional_queries(self,
                                    statements: Union[Workload, Sequence[str]]
                                    ) -> List[QueryCostComparison]:
        """Evaluate queries that were not part of the training workload.

        The benefit they get from the recommended configuration
        demonstrates the value of recommending *generalized* index
        configurations.
        """
        if isinstance(statements, Workload):
            queries = normalize_workload(statements)
        else:
            queries = [normalize_statement(text, query_id=f"extra-q{i + 1}")
                       for i, text in enumerate(statements)]
        return self.compare_query_costs(queries)

    # ------------------------------------------------------------------
    # What-if editing ("modify the recommended configuration")
    # ------------------------------------------------------------------
    def what_if(self, add: Optional[Iterable[IndexDefinition]] = None,
                remove: Optional[Iterable[IndexDefinition]] = None
                ) -> ConfigurationBenefit:
        """Benefit of the recommendation with some indexes added/removed."""
        modified = self.recommended_configuration.copy(name="what-if")
        for index in (remove or []):
            modified.remove(index)
        for index in (add or []):
            modified.add(index)
        evaluator = ConfigurationEvaluator(self.database, self.recommendation.queries,
                                           self.parameters, self.optimizer)
        return evaluator.evaluate(modified)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Workload-level summary of the three configurations."""
        comparisons = self.compare_query_costs()
        total_none = sum(c.cost_no_indexes for c in comparisons)
        total_recommended = sum(c.cost_recommended for c in comparisons)
        total_overtrained = sum(c.cost_overtrained for c in comparisons)
        evaluator = ConfigurationEvaluator(self.database, self.recommendation.queries,
                                           self.parameters, self.optimizer)
        return {
            "queries": float(len(comparisons)),
            "cost_no_indexes": total_none,
            "cost_recommended": total_recommended,
            "cost_overtrained": total_overtrained,
            "recommended_size_bytes": self.recommendation.total_size_bytes,
            "overtrained_size_bytes": evaluator.configuration_size_bytes(
                self.overtrained_configuration),
            "improvement_recommended_pct": (
                100.0 * (total_none - total_recommended) / total_none
                if total_none > 0 else 0.0),
            "improvement_overtrained_pct": (
                100.0 * (total_none - total_overtrained) / total_none
                if total_none > 0 else 0.0),
        }

    def render_table(self, comparisons: Optional[List[QueryCostComparison]] = None) -> str:
        """Text table of per-query costs (the Figure 5 bar chart as rows)."""
        comparisons = comparisons if comparisons is not None else self.compare_query_costs()
        header = (f"{'query':<16}{'no indexes':>14}{'recommended':>14}"
                  f"{'overtrained':>14}{'speedup':>10}")
        lines = [header, "-" * len(header)]
        for row in comparisons:
            lines.append(f"{row.query_id:<16}{row.cost_no_indexes:>14.1f}"
                         f"{row.cost_recommended:>14.1f}{row.cost_overtrained:>14.1f}"
                         f"{row.speedup_recommended:>10.2f}")
        return "\n".join(lines)
