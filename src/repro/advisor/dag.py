"""The generalization DAG (Section 2.2, Figure 4).

Nodes are candidate indexes; there is an edge from a candidate to each
of its *direct* generalizations ("each node ... has as its parents the
possible generalizations of this pattern").  The DAG's roots are the
most general candidates obtainable from the workload; the top-down
search walks it root-to-leaf.

Edges are computed from exact pattern containment restricted to
same-value-type candidates, then transitively reduced so that parents
are immediate generalizations only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.advisor.candidates import CandidateIndex, CandidateKey, CandidateSet
from repro.xpath.patterns import pattern_contains


class GeneralizationDag:
    """Parent/child structure over a candidate set."""

    def __init__(self, candidates: CandidateSet) -> None:
        self._candidates = candidates
        #: child key -> set of parent keys (direct generalizations).
        self._parents: Dict[CandidateKey, Set[CandidateKey]] = {}
        #: parent key -> set of child keys (direct specializations).
        self._children: Dict[CandidateKey, Set[CandidateKey]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        candidates = self._candidates.candidates
        for candidate in candidates:
            self._parents.setdefault(candidate.key, set())
            self._children.setdefault(candidate.key, set())

        # All strict generalization relations (ancestor map).
        ancestors: Dict[CandidateKey, Set[CandidateKey]] = {
            c.key: set() for c in candidates}
        for child in candidates:
            for parent in candidates:
                if parent.key == child.key:
                    continue
                if parent.value_type is not child.value_type:
                    continue
                if (pattern_contains(parent.pattern, child.pattern)
                        and not pattern_contains(child.pattern, parent.pattern)):
                    ancestors[child.key].add(parent.key)

        # Transitive reduction: a parent is direct if no other ancestor of
        # the child is a descendant of that parent.
        for child_key, child_ancestors in ancestors.items():
            for parent_key in child_ancestors:
                direct = True
                for other_key in child_ancestors:
                    if other_key == parent_key:
                        continue
                    if parent_key in ancestors[other_key]:
                        direct = False
                        break
                if direct:
                    self._parents[child_key].add(parent_key)
                    self._children[parent_key].add(child_key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def candidates(self) -> CandidateSet:
        return self._candidates

    @property
    def node_count(self) -> int:
        return len(self._parents)

    @property
    def edge_count(self) -> int:
        return sum(len(parents) for parents in self._parents.values())

    def parents_of(self, candidate: CandidateIndex) -> List[CandidateIndex]:
        """Direct generalizations of ``candidate``."""
        return [self._candidates.get(key) for key in sorted(self._parents.get(candidate.key, set()))]

    def children_of(self, candidate: CandidateIndex) -> List[CandidateIndex]:
        """Direct specializations of ``candidate``."""
        return [self._candidates.get(key) for key in sorted(self._children.get(candidate.key, set()))]

    @property
    def roots(self) -> List[CandidateIndex]:
        """Candidates with no generalization above them (most general)."""
        return [self._candidates.get(key)
                for key, parents in self._parents.items() if not parents]

    @property
    def leaves(self) -> List[CandidateIndex]:
        """Candidates with no specialization below them (most specific)."""
        return [self._candidates.get(key)
                for key, children in self._children.items() if not children]

    def descendants_of(self, candidate: CandidateIndex) -> List[CandidateIndex]:
        """All (transitive) specializations of ``candidate``."""
        seen: Set[CandidateKey] = set()
        frontier = [candidate.key]
        while frontier:
            key = frontier.pop()
            for child_key in self._children.get(key, set()):
                if child_key not in seen:
                    seen.add(child_key)
                    frontier.append(child_key)
        return [self._candidates.get(key) for key in sorted(seen)]

    def depth(self) -> int:
        """Length of the longest root-to-leaf chain (1 for a flat DAG)."""
        memo: Dict[CandidateKey, int] = {}

        def walk(key: CandidateKey) -> int:
            if key in memo:
                return memo[key]
            children = self._children.get(key, set())
            result = 1 + (max((walk(child) for child in children), default=0))
            memo[key] = result
            return result

        return max((walk(root.key) for root in self.roots), default=0)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Indented text rendering of the DAG (the Figure 4 view)."""
        lines: List[str] = [f"generalization DAG: {self.node_count} nodes, "
                            f"{self.edge_count} edges, depth {self.depth()}"]
        visited: Set[CandidateKey] = set()

        def emit(candidate: CandidateIndex, indent: int) -> None:
            marker = "*" if candidate.is_generalized else "-"
            lines.append("  " * indent + f"{marker} {candidate.pattern.to_text()} "
                         f"[{candidate.value_type.value}]")
            if candidate.key in visited:
                return
            visited.add(candidate.key)
            for child in self.children_of(candidate):
                emit(child, indent + 1)

        for root in sorted(self.roots, key=lambda c: c.pattern.to_text()):
            emit(root, 1)
        return "\n".join(lines)
