"""The XML Index Advisor -- the paper's primary contribution.

The advisor takes an :class:`~repro.storage.document_store.XmlDatabase`,
a :class:`~repro.xquery.model.Workload`, and a disk-space budget, and
recommends the set of XML pattern indexes that maximizes the estimated
benefit to the workload within the budget.  The pipeline follows
Figure 1 of the paper:

1. **Basic candidates** (:mod:`repro.advisor.candidates`) -- for every
   workload query, ask the optimizer's Enumerate Indexes mode which
   query patterns could use an index.
2. **Generalization** (:mod:`repro.advisor.generalization`,
   :mod:`repro.advisor.dag`) -- expand the candidates with more general
   patterns that can serve several queries (and future queries), and
   organize all candidates in a generalization DAG.
3. **Configuration search** (:mod:`repro.advisor.enumeration`) -- search
   the space of configurations under the disk budget with one of three
   algorithms: plain greedy knapsack (the relational baseline), greedy
   with redundancy-detection heuristics, or top-down DAG search.
4. **Benefit estimation** (:mod:`repro.advisor.benefit`) -- every
   configuration considered is costed by the optimizer's Evaluate
   Indexes mode over the whole workload, so index interaction and update
   (maintenance) costs are accounted for.
5. **Analysis** (:mod:`repro.advisor.analysis`) -- per-query comparisons
   against the no-index and "overtrained" configurations, evaluation of
   unseen queries, and what-if editing, as shown in the demonstration.

The one-call entry point is :class:`repro.advisor.advisor.XmlIndexAdvisor`.
"""

from repro.advisor.advisor import Recommendation, XmlIndexAdvisor
from repro.advisor.analysis import QueryCostComparison, RecommendationAnalysis
from repro.advisor.benefit import ConfigurationBenefit, ConfigurationEvaluator
from repro.advisor.candidates import CandidateIndex, CandidateSet, enumerate_basic_candidates
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.dag import GeneralizationDag
from repro.advisor.enumeration import (
    GreedySearch,
    GreedyWithHeuristicsSearch,
    SearchResult,
    TopDownSearch,
    create_search,
)
from repro.advisor.generalization import GeneralizationResult, generalize_candidates

__all__ = [
    "AdvisorParameters",
    "CandidateIndex",
    "CandidateSet",
    "ConfigurationBenefit",
    "ConfigurationEvaluator",
    "GeneralizationDag",
    "GeneralizationResult",
    "GreedySearch",
    "GreedyWithHeuristicsSearch",
    "QueryCostComparison",
    "Recommendation",
    "RecommendationAnalysis",
    "SearchAlgorithm",
    "SearchResult",
    "TopDownSearch",
    "XmlIndexAdvisor",
    "create_search",
    "enumerate_basic_candidates",
    "generalize_candidates",
]
