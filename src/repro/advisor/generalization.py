"""Candidate generalization rules (Section 2.2 of the paper).

The optimizer enumerates patterns that are specific to individual
queries.  To obtain indexes that can serve several queries -- and
queries the training workload has not seen -- the advisor expands the
candidate set with generalized patterns:

* **pairwise label generalization** -- two candidates of the same length
  whose labels differ in some steps produce the pattern with wildcards
  in the differing steps (``/regions/namerica/item/quantity`` +
  ``/regions/africa/item/quantity`` -> ``/regions/*/item/quantity``;
  repeating the rule produces ``/regions/*/item/*``);
* **tail generalization** -- a generalized candidate additionally spawns
  the version of itself with a wildcard last step, indexing all children
  of the shared parent path;
* **prefix generalization** (optional) -- candidates sharing a proper
  prefix but diverging afterwards produce ``<prefix>//*``, an index over
  the whole subtree below the shared prefix.

Rules are applied per value type, to fixpoint or a configured number of
rounds, and every generalized candidate records which workload queries
it (transitively) covers.  The result also carries the
:class:`~repro.advisor.dag.GeneralizationDag` over the expanded set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.advisor.candidates import CandidateIndex, CandidateSet
from repro.advisor.config import AdvisorParameters
from repro.advisor.dag import GeneralizationDag
from repro.xpath.patterns import (
    PathPattern,
    generalize_pair,
    generalize_prefix,
    generalize_tail,
)
from repro.xquery.model import ValueType


@dataclass
class GeneralizationResult:
    """Output of the generalization phase."""

    candidates: CandidateSet
    dag: GeneralizationDag
    basic_count: int
    generalized_count: int
    rounds_used: int

    def describe(self) -> str:
        return (f"generalization: {self.basic_count} basic candidates expanded to "
                f"{len(self.candidates)} ({self.generalized_count} generalized) "
                f"in {self.rounds_used} round(s); DAG depth {self.dag.depth()}")


def _new_candidate(pattern: PathPattern, value_type: ValueType,
                   sources: Sequence[CandidateIndex]) -> CandidateIndex:
    benefiting: Set[str] = set()
    predicates = []
    for source in sources:
        benefiting.update(source.benefiting_queries)
        for predicate in source.covered_predicates:
            if predicate not in predicates:
                predicates.append(predicate)
    return CandidateIndex(pattern=pattern, value_type=value_type,
                          source="generalized",
                          benefiting_queries=benefiting,
                          covered_predicates=predicates)


def _apply_pairwise_rules(candidates: List[CandidateIndex],
                          parameters: AdvisorParameters) -> List[CandidateIndex]:
    """One round of pairwise generalization over same-type candidates."""
    produced: List[CandidateIndex] = []
    for first, second in combinations(candidates, 2):
        generalized = generalize_pair(first.pattern, second.pattern)
        if generalized is not None:
            produced.append(_new_candidate(generalized, first.value_type,
                                           [first, second]))
        if parameters.enable_prefix_generalization:
            prefixed = generalize_prefix(first.pattern, second.pattern)
            if prefixed is not None:
                produced.append(_new_candidate(prefixed, first.value_type,
                                               [first, second]))
    return produced


def _apply_tail_rule(candidates: List[CandidateIndex]) -> List[CandidateIndex]:
    """Tail generalization of already-generalized candidates.

    Applying it only to generalized candidates reproduces the paper's
    example (``/regions/*/item/quantity`` -> ``/regions/*/item/*``)
    without exploding every single-query candidate into a wildcard.
    """
    produced: List[CandidateIndex] = []
    for candidate in candidates:
        if not candidate.is_generalized:
            continue
        generalized = generalize_tail(candidate.pattern)
        if generalized is not None:
            produced.append(_new_candidate(generalized, candidate.value_type,
                                           [candidate]))
    return produced


def generalize_candidates(basic: CandidateSet,
                          parameters: Optional[AdvisorParameters] = None
                          ) -> GeneralizationResult:
    """Expand ``basic`` with generalized candidates and build the DAG."""
    parameters = parameters or AdvisorParameters()
    expanded = basic.copy()
    basic_count = len(expanded)
    rounds_used = 0

    for _ in range(parameters.generalization_rounds):
        if len(expanded) >= parameters.max_candidates:
            break
        rounds_used += 1
        added_this_round = 0
        for value_type in ValueType:
            group = expanded.by_value_type(value_type)
            if len(group) < 1:
                continue
            produced = _apply_pairwise_rules(group, parameters)
            produced.extend(_apply_tail_rule(group))
            for candidate in produced:
                if len(expanded) >= parameters.max_candidates:
                    break
                if expanded.get(candidate.key) is None:
                    expanded.add(candidate)
                    added_this_round += 1
                else:
                    # Merge query attribution into the existing entry.
                    expanded.add(candidate)
        if added_this_round == 0:
            break

    _propagate_query_attribution(expanded)
    dag = GeneralizationDag(expanded)
    return GeneralizationResult(candidates=expanded, dag=dag,
                                basic_count=basic_count,
                                generalized_count=len(expanded) - basic_count,
                                rounds_used=rounds_used)


def _propagate_query_attribution(candidates: CandidateSet) -> None:
    """Make every candidate claim the queries of all candidates it contains.

    After generalization, a general candidate covers every query whose
    basic candidate pattern it contains; recording that explicitly keeps
    the redundancy heuristics and the reports simple.
    """
    all_candidates = candidates.candidates
    for general in all_candidates:
        for specific in all_candidates:
            if general is specific:
                continue
            if general.value_type is not specific.value_type:
                continue
            if general.covers_candidate(specific):
                general.benefiting_queries.update(specific.benefiting_queries)
                for predicate in specific.covered_predicates:
                    if predicate not in general.covered_predicates:
                        general.covered_predicates.append(predicate)
