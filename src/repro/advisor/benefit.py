"""Configuration benefit estimation (Section 2.3, "Evaluate Indexes" usage).

The benefit of an index configuration is the frequency-weighted drop in
estimated workload cost when the configuration is simulated as virtual
indexes, minus the maintenance cost it imposes on the workload's update
statements:

.. math::

    benefit(C) = \\sum_q f_q (cost_q(\\emptyset) - cost_q(C))
                 - \\sum_u f_u maintenance_u(C)

Because each query is costed against the *whole* configuration (not one
index at a time), index interaction is captured: an index that is
shadowed by a better one contributes nothing, exactly as in the paper
("the benefit of an index can change depending on which other indexes
are available").

The evaluator memoizes per-query evaluations keyed by the subset of the
configuration that could possibly matter to the query, which keeps the
greedy search's repeated evaluations cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.advisor.config import AdvisorParameters
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.index.sizing import estimate_index_size_bytes
from repro.optimizer.explain import evaluate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.storage.document_store import XmlDatabase
from repro.xpath.patterns import pattern_contains
from repro.xquery.model import NormalizedQuery, ValueType


@dataclass
class QueryEvaluation:
    """Per-query outcome of evaluating one configuration."""

    query_id: str
    frequency: float
    cost_without_indexes: float
    cost_with_configuration: float
    used_index_keys: Tuple[Tuple[str, str], ...] = ()

    @property
    def benefit(self) -> float:
        """Frequency-weighted cost reduction (negative for update overhead)."""
        return (self.cost_without_indexes - self.cost_with_configuration) * self.frequency


@dataclass
class ConfigurationBenefit:
    """Benefit, size and per-query breakdown of one configuration."""

    configuration: IndexConfiguration
    total_benefit: float
    total_size_bytes: float
    query_evaluations: List[QueryEvaluation] = field(default_factory=list)
    index_sizes: Dict[Tuple[str, str], float] = field(default_factory=dict)

    @property
    def used_index_keys(self) -> FrozenSet[Tuple[str, str]]:
        used: set = set()
        for evaluation in self.query_evaluations:
            used.update(evaluation.used_index_keys)
        return frozenset(used)

    @property
    def unused_indexes(self) -> List[IndexDefinition]:
        """Indexes in the configuration no query plan used."""
        used = self.used_index_keys
        return [index for index in self.configuration if index.key not in used]

    def describe(self) -> str:
        return (f"configuration of {len(self.configuration)} index(es): "
                f"benefit {self.total_benefit:.1f}, "
                f"size {self.total_size_bytes / 1024:.1f} KiB, "
                f"{len(self.unused_indexes)} unused")


class ConfigurationEvaluator:
    """Costs configurations over a fixed normalized workload."""

    def __init__(self, database: XmlDatabase, queries: Sequence[NormalizedQuery],
                 parameters: Optional[AdvisorParameters] = None,
                 optimizer: Optional[Optimizer] = None) -> None:
        self.database = database
        self.queries = list(queries)
        self.parameters = parameters or AdvisorParameters()
        self.optimizer = optimizer or Optimizer(database, self.parameters.cost_parameters)
        self._baseline: Dict[str, float] = {}
        self._query_cache: Dict[Tuple[str, FrozenSet[Tuple[str, str]]],
                                Tuple[float, Tuple[Tuple[str, str], ...]]] = {}
        self._size_cache: Dict[Tuple[str, str], float] = {}
        self._compute_baseline()

    # ------------------------------------------------------------------
    # Baseline
    # ------------------------------------------------------------------
    def _compute_baseline(self) -> None:
        for query in self.queries:
            if query.is_update:
                plan = self.optimizer.plan_update(query, candidate_indexes=[])
                self._baseline[query.query_id] = plan.total_cost
            else:
                plan = self.optimizer.optimize(query, candidate_indexes=[])
                self._baseline[query.query_id] = plan.total_cost

    @property
    def baseline_costs(self) -> Dict[str, float]:
        """Per-query cost with no indexes at all."""
        return dict(self._baseline)

    @property
    def baseline_workload_cost(self) -> float:
        return sum(self._baseline[q.query_id] * q.frequency for q in self.queries)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def index_size_bytes(self, index: IndexDefinition) -> float:
        size = self._size_cache.get(index.key)
        if size is None:
            size = estimate_index_size_bytes(index, self.database.statistics)
            self._size_cache[index.key] = size
        return size

    def configuration_size_bytes(self, configuration: Iterable[IndexDefinition]) -> float:
        return sum(self.index_size_bytes(index) for index in configuration)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, configuration: "IndexConfiguration | Iterable[IndexDefinition]"
                 ) -> ConfigurationBenefit:
        """Estimate the benefit of ``configuration`` over the workload."""
        if not isinstance(configuration, IndexConfiguration):
            configuration = IndexConfiguration(configuration)
        evaluations: List[QueryEvaluation] = []
        for query in self.queries:
            cost, used = self._evaluate_query(query, configuration)
            evaluations.append(QueryEvaluation(
                query_id=query.query_id,
                frequency=query.frequency,
                cost_without_indexes=self._baseline[query.query_id],
                cost_with_configuration=cost,
                used_index_keys=used,
            ))
        total_benefit = sum(evaluation.benefit for evaluation in evaluations)
        sizes = {index.key: self.index_size_bytes(index) for index in configuration}
        return ConfigurationBenefit(configuration=configuration,
                                    total_benefit=total_benefit,
                                    total_size_bytes=sum(sizes.values()),
                                    query_evaluations=evaluations,
                                    index_sizes=sizes)

    def evaluate_single_index(self, index: IndexDefinition) -> ConfigurationBenefit:
        """Benefit of a configuration containing only ``index``."""
        return self.evaluate(IndexConfiguration([index]))

    def marginal_benefit(self, base: ConfigurationBenefit,
                         index: IndexDefinition) -> float:
        """Benefit gained by adding ``index`` to an already-evaluated config."""
        extended = base.configuration.copy()
        extended.add(index)
        return self.evaluate(extended).total_benefit - base.total_benefit

    # ------------------------------------------------------------------
    def _evaluate_query(self, query: NormalizedQuery,
                        configuration: IndexConfiguration
                        ) -> Tuple[float, Tuple[Tuple[str, str], ...]]:
        relevant = self._relevant_indexes(query, configuration)
        cache_key = (query.query_id, frozenset(index.key for index in relevant))
        cached = self._query_cache.get(cache_key)
        if cached is not None:
            return cached
        if query.is_update:
            if self.parameters.account_for_updates:
                plan = self.optimizer.plan_update(query, candidate_indexes=relevant)
                cost = plan.total_cost
                used = tuple(m.index.key for m in plan.maintenance_costs)
            else:
                cost = self._baseline[query.query_id]
                used = ()
        else:
            if not relevant:
                cost, used = self._baseline[query.query_id], ()
            else:
                result = evaluate_indexes(query, self.database, relevant,
                                          optimizer=self.optimizer,
                                          include_physical=False)
                cost = result.estimated_cost
                used = tuple(index.key for index in result.used_indexes)
        self._query_cache[cache_key] = (cost, used)
        return cost, used

    def _relevant_indexes(self, query: NormalizedQuery,
                          configuration: IndexConfiguration) -> List[IndexDefinition]:
        """The subset of the configuration that could affect ``query``.

        For queries: indexes whose pattern contains some predicate path.
        For updates: indexes whose pattern shares data paths with the
        touched patterns (approximated by containment either way).
        Restricting evaluation to this subset makes caching effective
        without changing the result (other indexes cannot appear in the
        query's plan or maintenance list).
        """
        relevant: List[IndexDefinition] = []
        if query.is_update:
            for index in configuration:
                for touched in query.touched_patterns:
                    if (pattern_contains(touched, index.pattern)
                            or pattern_contains(index.pattern, touched)):
                        relevant.append(index)
                        break
            return relevant
        for index in configuration:
            for predicate in query.predicates:
                if not predicate.is_existence and \
                        predicate.value_type is not index.value_type:
                    continue
                if pattern_contains(index.pattern, predicate.pattern):
                    relevant.append(index)
                    break
        return relevant
