"""Configuration benefit estimation (Section 2.3, "Evaluate Indexes" usage).

The benefit of an index configuration is the frequency-weighted drop in
estimated workload cost when the configuration is simulated as virtual
indexes, minus the maintenance cost it imposes on the workload's update
statements:

.. math::

    benefit(C) = \\sum_q f_q (cost_q(\\emptyset) - cost_q(C))
                 - \\sum_u f_u maintenance_u(C)

Because each query is costed against the *whole* configuration (not one
index at a time), index interaction is captured: an index that is
shadowed by a better one contributes nothing, exactly as in the paper
("the benefit of an index can change depending on which other indexes
are available").

Incremental what-if engine
--------------------------

The configuration search evaluates thousands of closely-related
configurations, so the evaluator is built around three incremental
structures (all behind the ``AdvisorParameters.use_incremental`` escape
hatch, which restores the legacy full re-evaluation):

* an **inverted relevance map** ``index key -> affected query ids``,
  computed once per (index pattern, value type) by a single
  pattern-containment pass over the workload's predicates and touched
  patterns -- ``evaluate`` and the searches stop re-deriving relevance
  per call;
* **delta evaluation**: :meth:`ConfigurationEvaluator.update` takes an
  already-evaluated base configuration plus the indexes added/removed,
  re-costs only the queries the relevance map says are affected, and
  reuses every other per-query evaluation verbatim.  The result is
  *exactly* what a full :meth:`evaluate` of the new configuration would
  return, because a query's cost depends only on the subset of the
  configuration relevant to it;
* per-query **memoization** keyed by ``(query id, relevant index
  keys)``, shared with the legacy path.

Invalidation contract: every public entry point revalidates against the
database.  With ``AdvisorParameters.use_incremental_maintenance`` (the
default) the evaluator polls a
:class:`~repro.storage.maintenance.DataChangeTracker` and invalidates
*fine-grained*: the pattern-relevance map always survives (it depends
only on workload and index patterns, never on data); per-query memo
rows and baseline costs are re-costed only for the queries whose
statistics inputs actually moved; and memoized index-size estimates
whose patterns were untouched are carried onto the rebuilt statistics
object.  With ``AdvisorParameters.use_collection_costing`` (the
default) each query's cached costs are keyed to the per-collection
data versions of its *routing set*: a document add to one collection
re-costs only the queries routed there (plus any priced globally), and
every other collection's rows stay valid and byte-exact -- the
acceptance scenario the E7 benchmark counts.  Under the legacy global
model a change to the whole-database aggregates instead stales *all*
per-query costs and forces the full re-cost (the exactness guard) --
the selective path then pays off only when the signature moves but the
synopsis does not (RUNSTATS, empty-collection DDL, net-zero batches).
Disabling ``use_incremental_maintenance`` restores the legacy
behaviour: drop everything, including the relevance map, whenever
``data_signature()`` moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.advisor.config import AdvisorParameters
from repro.contracts import cache_contract, snapshot_contract
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.index.sizing import carry_over_size_estimates, estimate_index_size_bytes
from repro.optimizer.explain import evaluate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.storage.document_store import XmlDatabase
from repro.storage.maintenance import DataChangeTracker
from repro.telemetry import MetricsRegistry, global_registry
from repro.xpath.patterns import pattern_contains
from repro.xquery.model import NormalizedQuery, ValueType


@snapshot_contract()
@dataclass(frozen=True, slots=True)
class QueryEvaluation:
    """Per-query outcome of evaluating one configuration."""

    query_id: str
    frequency: float
    cost_without_indexes: float
    cost_with_configuration: float
    used_index_keys: Tuple[Tuple[str, str], ...] = ()

    @property
    def benefit(self) -> float:
        """Frequency-weighted cost reduction (negative for update overhead)."""
        return (self.cost_without_indexes - self.cost_with_configuration) * self.frequency


@snapshot_contract()
@dataclass(frozen=True)
class ConfigurationBenefit:
    """Benefit, size and per-query breakdown of one configuration."""

    configuration: IndexConfiguration
    total_benefit: float
    total_size_bytes: float
    query_evaluations: List[QueryEvaluation] = field(default_factory=list)
    index_sizes: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: The evaluator epoch the per-query rows were costed in; delta
    #: updates across data changes use it to decide which rows are still
    #: reusable.  Not part of value equality.
    evaluator_epoch: int = field(default=0, compare=False, repr=False)

    @property
    def used_index_keys(self) -> FrozenSet[Tuple[str, str]]:
        used: set = set()
        for evaluation in self.query_evaluations:
            used.update(evaluation.used_index_keys)
        return frozenset(used)

    @property
    def unused_indexes(self) -> List[IndexDefinition]:
        """Indexes in the configuration no query plan used."""
        used = self.used_index_keys
        return [index for index in self.configuration if index.key not in used]

    def describe(self) -> str:
        return (f"configuration of {len(self.configuration)} index(es): "
                f"benefit {self.total_benefit:.1f}, "
                f"size {self.total_size_bytes / 1024:.1f} KiB, "
                f"{len(self.unused_indexes)} unused")


@cache_contract(memos={
    "_baseline": {"policy": "revalidate", "revalidators": ("refresh",)},
    "_query_cache": {"policy": "revalidate", "revalidators": ("refresh",)},
    "_relevance": {"policy": "static"},
})
class ConfigurationEvaluator:
    """Costs configurations over a fixed normalized workload."""

    def __init__(self, database: XmlDatabase, queries: Sequence[NormalizedQuery],
                 parameters: Optional[AdvisorParameters] = None,
                 optimizer: Optional[Optimizer] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.database = database
        self.queries = list(queries)
        self.parameters = parameters or AdvisorParameters()
        self.use_incremental = self.parameters.use_incremental
        self.use_incremental_maintenance = \
            self.parameters.use_incremental_maintenance
        self.use_collection_costing = self.parameters.use_collection_costing
        #: Per-evaluator metrics; recordings also roll up into
        #: ``registry`` (or the process-global registry).
        self.metrics = MetricsRegistry(
            parent=registry if registry is not None else global_registry())
        self.optimizer = optimizer or Optimizer(
            database, self.parameters.cost_parameters,
            enable_plan_cache=self.parameters.enable_plan_cache,
            enable_fine_grained_invalidation=self.use_incremental_maintenance,
            use_collection_costing=self.use_collection_costing,
            registry=self.metrics)
        if optimizer is not None:
            # Staleness decisions must mirror the model that priced the
            # cached rows, so follow an injected optimizer's flag.
            self.use_collection_costing = optimizer.use_collection_costing
        self._baseline: Dict[str, float] = {}
        self._query_cache: Dict[Tuple[str, FrozenSet[Tuple[str, str]]],
                                Tuple[float, Tuple[Tuple[str, str], ...]]] = {}
        #: Inverted relevance map: index key -> ids of affected queries.
        self._relevance: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self._signature = database.data_signature()
        self._tracker = DataChangeTracker(database) \
            if self.use_incremental_maintenance else None
        #: Monotonic refresh epoch: bumped every time a data change is
        #: absorbed.  Benefits are stamped with the epoch they were
        #: costed in so delta updates know which rows are reusable.
        self._epoch = 0
        #: Query ids staled by the most recent absorbed change; ``None``
        #: means "all of them" (aggregates moved, or legacy mode).
        self._last_stale: Optional[FrozenSet[str]] = None
        #: Full-workload evaluations performed (legacy path + evaluate()).
        self._m_full_evaluations = self.metrics.counter(
            "evaluator.whatif.full_evaluations")
        #: Delta evaluations performed (incremental update()/extend()).
        self._m_delta_evaluations = self.metrics.counter(
            "evaluator.whatif.delta_evaluations")
        #: Per-query what-if cost requests issued (before the per-query
        #: memo): the unit of work the delta engine saves.  A full
        #: evaluation issues one per workload query; a delta evaluation
        #: one per affected query.
        self._m_query_costings = self.metrics.counter(
            "evaluator.whatif.costings")
        #: Baseline/query-memo rows preserved across data changes by the
        #: fine-grained invalidation path (for the tests/benchmarks).
        self._m_rows_preserved = self.metrics.counter(
            "evaluator.whatif.rows_preserved")
        #: Per-query memo outcomes (`_query_cache` lookups).
        self._m_memo_hits = self.metrics.counter("evaluator.memo.hits")
        self._m_memo_misses = self.metrics.counter("evaluator.memo.misses")
        self._compute_baseline()

    # ------------------------------------------------------------------
    # Legacy counter attributes -- byte-equal views of registry metrics
    # ------------------------------------------------------------------
    @property
    def full_evaluations(self) -> int:
        return self._m_full_evaluations.value

    @full_evaluations.setter
    def full_evaluations(self, value: int) -> None:
        self._m_full_evaluations.reset(value)

    @property
    def delta_evaluations(self) -> int:
        return self._m_delta_evaluations.value

    @delta_evaluations.setter
    def delta_evaluations(self, value: int) -> None:
        self._m_delta_evaluations.reset(value)

    @property
    def query_costings(self) -> int:
        return self._m_query_costings.value

    @query_costings.setter
    def query_costings(self, value: int) -> None:
        self._m_query_costings.reset(value)

    @property
    def rows_preserved_on_refresh(self) -> int:
        return self._m_rows_preserved.value

    @rows_preserved_on_refresh.setter
    def rows_preserved_on_refresh(self, value: int) -> None:
        self._m_rows_preserved.reset(value)

    @property
    def memo_hits(self) -> int:
        return self._m_memo_hits.value

    @property
    def memo_misses(self) -> int:
        return self._m_memo_misses.value

    # ------------------------------------------------------------------
    # Staleness / invalidation
    # ------------------------------------------------------------------
    @property
    def data_signature(self) -> Tuple[Tuple[str, int], ...]:
        """The database signature the cached state was derived from."""
        return self._signature

    def refresh(self) -> bool:
        """Revalidate against the database; invalidate stale state.

        Returns True when the database changed.  With fine-grained
        maintenance the invalidation is selective (see the module
        docstring); otherwise the relevance map, query cache and
        baseline are dropped and recomputed wholesale.  Called
        automatically by every public evaluation entry point.
        """
        if self._tracker is not None:
            change = self._tracker.poll()
            if change is None:
                return False
            self._signature = self.database.data_signature()
            self._epoch += 1
            # Size estimates depend only on per-pattern statistics, so
            # untouched ones survive even aggregate-moving changes.
            if change.old_statistics is not None \
                    and change.new_statistics is not None:
                carry_over_size_estimates(change.old_statistics,
                                          change.new_statistics,
                                          change.affects_index_key)
            # The relevance map is pattern-containment only -- data
            # changes can never stale it.
            if change.aggregates_changed and not self.use_collection_costing:
                # Legacy global cost model: moved aggregates stale every
                # cached cost (the exactness guard).
                self._query_cache.clear()
                self._baseline.clear()
                self._compute_baseline()
                self._last_stale = None
            else:
                stale_ids, unrouted_ids = self._staled_query_ids(change)
                evict = [key for key in self._query_cache
                         if key[0] in stale_ids
                         or (key[0] in unrouted_ids
                             and any(change.affects_index_key(index_key)
                                     for index_key in key[1]))]
                for key in evict:
                    del self._query_cache[key]
                self._m_rows_preserved.inc(len(self._query_cache))
                # Baselines are no-index costs: only the query's own
                # patterns (and, with collection costing, its routing
                # set) matter.
                for query in self.queries:
                    if query.query_id in stale_ids:
                        self._baseline[query.query_id] = self._baseline_cost(query)
                # The row-reuse gate for delta updates must be wider: a
                # configured row is also stale when a *relevant index*'s
                # statistics moved (entry counts / key selectivities are
                # computed over the index pattern, which may match
                # changed paths the query's own predicates do not).
                # Every index that ever contributed to a row is in the
                # relevance map, so the union over affected known keys
                # covers all reusable rows exactly.  Routed queries
                # whose collections the change did not touch are exempt:
                # their rows price index entries from the routed
                # synopses only, which the change provably left alone.
                index_stale = set(stale_ids)
                for index_key, query_ids in self._relevance.items():
                    if query_ids and change.affects_index_key(index_key):
                        index_stale.update(
                            query_id for query_id in query_ids
                            if query_id in unrouted_ids)
                self._last_stale = frozenset(index_stale)
            return True
        # Legacy signature-keyed full invalidation.
        signature = self.database.data_signature()
        if signature == self._signature:
            return False
        self._signature = signature
        self._epoch += 1
        self._last_stale = None
        self._relevance.clear()
        self._query_cache.clear()
        self._baseline.clear()
        self._compute_baseline()
        return True

    def _staled_query_ids(self, change) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """``(stale ids, unrouted ids)`` for one absorbed data change.

        With collection-scoped costing a query's cached costs are keyed
        to its routing set's collections: the query is stale only when a
        routed collection changed or a changed path could move its
        routing set.  Queries priced globally (no routing -- legacy
        mode, patterns that can match anywhere, or empty routing sets)
        are reported in the second set; their rows additionally stale
        through relevant-index pattern changes.
        """
        if not self.use_collection_costing:
            every = frozenset(query.query_id for query in self.queries)
            return (frozenset(query.query_id for query in self.queries
                              if change.affects_query(query)), every)
        model = self.optimizer.cost_model
        stale: set = set()
        unrouted: set = set()
        for query in self.queries:
            routing = model.routing_set(query)
            if not routing:
                unrouted.add(query.query_id)
            if change.stales_routed_query(query, routing):
                stale.add(query.query_id)
        return frozenset(stale), frozenset(unrouted)

    # ------------------------------------------------------------------
    # Baseline
    # ------------------------------------------------------------------
    def _baseline_cost(self, query: NormalizedQuery) -> float:
        if query.is_update:
            return self.optimizer.plan_update(query, candidate_indexes=[]).total_cost
        return self.optimizer.optimize(query, candidate_indexes=[]).total_cost

    def _compute_baseline(self) -> None:
        for query in self.queries:
            self._baseline[query.query_id] = self._baseline_cost(query)

    @property
    def baseline_costs(self) -> Dict[str, float]:
        """Per-query cost with no indexes at all."""
        self.refresh()
        return dict(self._baseline)

    @property
    def baseline_workload_cost(self) -> float:
        self.refresh()
        return sum(self._baseline[q.query_id] * q.frequency for q in self.queries)

    # ------------------------------------------------------------------
    # Relevance map
    # ------------------------------------------------------------------
    def relevant_queries(self, index: IndexDefinition) -> FrozenSet[str]:
        """Ids of the workload queries ``index`` could affect (memoized).

        For queries: the index pattern contains some predicate path of a
        compatible value type.  For updates: the index pattern shares
        data paths with the touched patterns.  Only these queries can
        change cost when ``index`` enters or leaves a configuration.
        """
        cached = self._relevance.get(index.key)
        if cached is None:
            cached = frozenset(
                query.query_id for query in self.queries
                if self._index_relevant_to_query(index, query))
            self._relevance[index.key] = cached
        return cached

    def prime_relevance(self, indexes: Iterable[IndexDefinition]) -> None:
        """Precompute the relevance map for ``indexes`` in one pass."""
        for index in indexes:
            self.relevant_queries(index)

    @property
    def relevance_map(self) -> Dict[Tuple[str, str], FrozenSet[str]]:
        """A copy of the inverted relevance map computed so far."""
        return dict(self._relevance)

    @staticmethod
    def _index_relevant_to_query(index: IndexDefinition,
                                 query: NormalizedQuery) -> bool:
        if query.is_update:
            for touched in query.touched_patterns:
                if (pattern_contains(touched, index.pattern)
                        or pattern_contains(index.pattern, touched)):
                    return True
            return False
        for predicate in query.predicates:
            if not predicate.is_existence and \
                    predicate.value_type is not index.value_type:
                continue
            if pattern_contains(index.pattern, predicate.pattern):
                return True
        return False

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def index_size_bytes(self, index: IndexDefinition) -> float:
        """Estimated size of ``index`` (memoized on the statistics object,
        which is rebuilt -- invalidating the memo -- on data changes)."""
        return estimate_index_size_bytes(index, self.database.statistics)

    def configuration_size_bytes(self, configuration: Iterable[IndexDefinition]) -> float:
        return sum(self.index_size_bytes(index) for index in configuration)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, configuration: "IndexConfiguration | Iterable[IndexDefinition]"
                 ) -> ConfigurationBenefit:
        """Estimate the benefit of ``configuration`` over the workload."""
        self.refresh()
        if not isinstance(configuration, IndexConfiguration):
            configuration = IndexConfiguration(configuration)
        self._m_full_evaluations.inc()
        return self._evaluate_now(configuration)

    def _evaluate_now(self, configuration: IndexConfiguration) -> ConfigurationBenefit:
        evaluations: List[QueryEvaluation] = []
        for query in self.queries:
            cost, used = self._evaluate_query(query, configuration)
            evaluations.append(QueryEvaluation(
                query_id=query.query_id,
                frequency=query.frequency,
                cost_without_indexes=self._baseline[query.query_id],
                cost_with_configuration=cost,
                used_index_keys=used,
            ))
        return self._package(configuration, evaluations)

    def _package(self, configuration: IndexConfiguration,
                 evaluations: List[QueryEvaluation]) -> ConfigurationBenefit:
        total_benefit = sum(evaluation.benefit for evaluation in evaluations)
        sizes = {index.key: self.index_size_bytes(index) for index in configuration}
        return ConfigurationBenefit(configuration=configuration,
                                    total_benefit=total_benefit,
                                    total_size_bytes=sum(sizes.values()),
                                    query_evaluations=evaluations,
                                    index_sizes=sizes,
                                    evaluator_epoch=self._epoch)

    def evaluate_single_index(self, index: IndexDefinition) -> ConfigurationBenefit:
        """Benefit of a configuration containing only ``index``."""
        return self.evaluate(IndexConfiguration([index]))

    def update(self, base: ConfigurationBenefit,
               add: Sequence[IndexDefinition] = (),
               remove: Sequence[IndexDefinition] = ()) -> ConfigurationBenefit:
        """Delta evaluation: ``base``'s configuration with ``add`` added
        and ``remove`` removed.

        Only the queries the relevance map marks as affected by a
        changed index are re-costed; every other per-query evaluation is
        reused from ``base``.  The result equals a full
        :meth:`evaluate` of the new configuration exactly (a query's
        cost depends only on its relevant subset of the configuration).
        With ``use_incremental`` disabled this falls back to the full
        re-evaluation.

        When the database changed since ``base`` was computed, the
        epoch stamp decides what survives: with fine-grained
        maintenance and a base from the immediately preceding epoch,
        only the rows the change staled are re-costed on top of the
        configuration delta; otherwise (legacy mode, aggregates moved,
        or an older base) every row is stale and the evaluation is
        full.
        """
        self.refresh()
        configuration = base.configuration.copy()
        changed: List[IndexDefinition] = []
        for definition in remove:
            if configuration.remove(definition):
                changed.append(definition)
        for definition in add:
            if configuration.add(definition):
                changed.append(definition)
        if not self.use_incremental:
            self._m_full_evaluations.inc()
            return self._evaluate_now(configuration)
        stale_rows: FrozenSet[str]
        if base.evaluator_epoch == self._epoch:
            stale_rows = frozenset()
        elif (base.evaluator_epoch == self._epoch - 1
                and self._last_stale is not None):
            stale_rows = self._last_stale
        else:
            self._m_full_evaluations.inc()
            return self._evaluate_now(configuration)
        self._m_delta_evaluations.inc()
        affected: set = set(stale_rows)
        for definition in changed:
            affected.update(self.relevant_queries(definition))
        base_rows = {row.query_id: row for row in base.query_evaluations}
        evaluations: List[QueryEvaluation] = []
        for query in self.queries:
            row = base_rows.get(query.query_id)
            if row is None or query.query_id in affected:
                cost, used = self._evaluate_query(query, configuration)
                row = QueryEvaluation(
                    query_id=query.query_id,
                    frequency=query.frequency,
                    cost_without_indexes=self._baseline[query.query_id],
                    cost_with_configuration=cost,
                    used_index_keys=used,
                )
            evaluations.append(row)
        return self._package(configuration, evaluations)

    def extend(self, base: ConfigurationBenefit,
               index: IndexDefinition) -> ConfigurationBenefit:
        """Delta evaluation of ``base``'s configuration plus ``index``."""
        return self.update(base, add=[index])

    def marginal_benefit(self, base: ConfigurationBenefit,
                         index: IndexDefinition) -> float:
        """Benefit gained by adding ``index`` to an already-evaluated config."""
        if self.use_incremental:
            return self.extend(base, index).total_benefit - base.total_benefit
        extended = base.configuration.copy()
        extended.add(index)
        return self.evaluate(extended).total_benefit - base.total_benefit

    # ------------------------------------------------------------------
    def _evaluate_query(self, query: NormalizedQuery,
                        configuration: IndexConfiguration
                        ) -> Tuple[float, Tuple[Tuple[str, str], ...]]:
        self._m_query_costings.inc()
        relevant = self._relevant_indexes(query, configuration)
        cache_key = (query.query_id, frozenset(index.key for index in relevant))
        cached = self._query_cache.get(cache_key)
        if cached is not None:
            self._m_memo_hits.inc()
            return cached
        self._m_memo_misses.inc()
        if query.is_update:
            if self.parameters.account_for_updates:
                plan = self.optimizer.plan_update(query, candidate_indexes=relevant)
                cost = plan.total_cost
                used = tuple(m.index.key for m in plan.maintenance_costs)
            else:
                cost = self._baseline[query.query_id]
                used = ()
        else:
            if not relevant:
                cost, used = self._baseline[query.query_id], ()
            else:
                result = evaluate_indexes(query, self.database, relevant,
                                          optimizer=self.optimizer,
                                          include_physical=False)
                cost = result.estimated_cost
                used = tuple(index.key for index in result.used_indexes)
        self._query_cache[cache_key] = (cost, used)
        return cost, used

    def _relevant_indexes(self, query: NormalizedQuery,
                          configuration: IndexConfiguration) -> List[IndexDefinition]:
        """The subset of the configuration that could affect ``query``.

        Restricting evaluation to this subset makes caching effective
        without changing the result (other indexes cannot appear in the
        query's plan or maintenance list).  The incremental engine
        answers this from the inverted relevance map (two dict lookups
        per index); the legacy path re-derives pattern containment per
        call, as the original evaluator did.
        """
        if self.use_incremental:
            query_id = query.query_id
            return [index for index in configuration
                    if query_id in self.relevant_queries(index)]
        relevant: List[IndexDefinition] = []
        if query.is_update:
            for index in configuration:
                for touched in query.touched_patterns:
                    if (pattern_contains(touched, index.pattern)
                            or pattern_contains(index.pattern, touched)):
                        relevant.append(index)
                        break
            return relevant
        for index in configuration:
            for predicate in query.predicates:
                if not predicate.is_existence and \
                        predicate.value_type is not index.value_type:
                    continue
                if pattern_contains(index.pattern, predicate.pattern):
                    relevant.append(index)
                    break
        return relevant
