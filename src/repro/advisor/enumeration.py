"""Configuration enumeration: searching for the best index configuration.

Three strategies are provided (Section 2.3):

:class:`GreedySearch`
    The relational-advisor baseline [8]: rank candidates once by
    benefit-per-byte and add them while the disk budget allows.  No
    redundancy detection -- a general index can be picked even though
    the patterns it covers are already covered, wasting budget.

:class:`GreedyWithHeuristicsSearch`
    The paper's first algorithm: greedy search augmented with heuristics
    that (a) maintain a bitmap of workload path expressions already
    covered by the chosen configuration and never admit an index that
    covers nothing new, (b) re-evaluate marginal benefits as the
    configuration grows (capturing index interaction), and (c) evict
    indexes that end up unused by every query plan, reclaiming their
    space for more useful indexes.

:class:`TopDownSearch`
    The paper's second algorithm: start from the roots of the
    generalization DAG (the most general candidates -- maximum benefit,
    usually over budget) and repeatedly replace the index with the worst
    size-to-benefit contribution by its more specific DAG children until
    the configuration fits in the budget.  The goal is the most general
    configuration that fits, which is the right choice when the training
    workload is only representative of the real one.

Lazy-greedy evaluation
----------------------

With ``AdvisorParameters.use_incremental`` (the default) the two
iterative strategies run on the evaluator's incremental what-if engine:

* :class:`GreedyWithHeuristicsSearch` keeps candidates in a CELF-style
  priority queue ordered by their last-computed benefit/size ratio.
  A cached marginal benefit only becomes stale when an index whose
  affected queries overlap the candidate's affected queries enters the
  configuration (evicted indexes are unused by every plan, so removing
  them never changes a query's cost); stale heap heads are re-evaluated
  and re-inserted, and a head that is still fresh when popped is
  selected without touching the other candidates.  Marginal benefits
  are non-increasing as the configuration grows for workload shapes
  without cross-index plan synergy, which makes stale entries upper
  bounds and the lazy selection identical to the exhaustive rescans of
  the legacy loop -- the randomized equivalence tests guard this.
* :class:`TopDownSearch` keeps replacement victims in a size-ordered
  heap (sizes are immutable per index) and re-costs each
  replace/trim step through the evaluator's delta
  :meth:`~repro.advisor.benefit.ConfigurationEvaluator.update` instead
  of a full workload pass.

``use_incremental=False`` restores the legacy exhaustive loops
verbatim, which the equivalence tests and benchmarks compare against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.advisor.benefit import ConfigurationBenefit, ConfigurationEvaluator
from repro.advisor.candidates import CandidateIndex, CandidateSet
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.dag import GeneralizationDag
from repro.index.definition import IndexConfiguration, IndexDefinition

#: Marginal gains at or below this are treated as "no benefit".
_MIN_GAIN = 1e-9
#: Benefit/size ratios at or below this floor are never selected (the
#: legacy scan's ``ratio > best_ratio + 1e-12`` with ``best_ratio``
#: starting at 0.0).
_MIN_RATIO = 1e-12


@dataclass
class SearchStep:
    """One step of a search trace (for the Figure 4 style walkthrough)."""

    action: str
    index_pattern: str
    detail: str = ""

    def describe(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.action}: {self.index_pattern}{suffix}"


@dataclass
class SearchResult:
    """Outcome of one configuration search."""

    algorithm: SearchAlgorithm
    configuration: IndexConfiguration
    benefit: ConfigurationBenefit
    budget_bytes: Optional[float]
    trace: List[SearchStep] = field(default_factory=list)
    evaluations_performed: int = 0

    @property
    def size_bytes(self) -> float:
        return self.benefit.total_size_bytes

    @property
    def fits_budget(self) -> bool:
        if self.budget_bytes is None:
            return True
        return self.size_bytes <= self.budget_bytes + 1e-6

    def describe(self) -> str:
        budget = ("unlimited" if self.budget_bytes is None
                  else f"{self.budget_bytes / 1024:.0f} KiB")
        return (f"{self.algorithm.value} search: {len(self.configuration)} index(es), "
                f"benefit {self.benefit.total_benefit:.1f}, "
                f"size {self.size_bytes / 1024:.1f} KiB (budget {budget}), "
                f"{self.evaluations_performed} configuration evaluations")


class _SearchBase:
    """Shared plumbing for the three search strategies."""

    algorithm: SearchAlgorithm

    def __init__(self, evaluator: ConfigurationEvaluator,
                 parameters: Optional[AdvisorParameters] = None) -> None:
        self.evaluator = evaluator
        self.parameters = parameters or AdvisorParameters()
        self._evaluations = 0

    # -- helpers ---------------------------------------------------------
    @property
    def _incremental(self) -> bool:
        return self.parameters.use_incremental

    def _evaluate(self, configuration: IndexConfiguration) -> ConfigurationBenefit:
        self._evaluations += 1
        return self.evaluator.evaluate(configuration)

    def _update(self, base: ConfigurationBenefit,
                add: Sequence[IndexDefinition] = (),
                remove: Sequence[IndexDefinition] = ()) -> ConfigurationBenefit:
        """Delta re-cost of ``base`` after adding/removing definitions."""
        self._evaluations += 1
        return self.evaluator.update(base, add=add, remove=remove)

    def _definition_for(self, candidate: CandidateIndex) -> IndexDefinition:
        return candidate.to_definition(is_virtual=True)  # memoized by candidate

    def _budget(self) -> Optional[float]:
        return self.parameters.disk_budget_bytes

    def _fits(self, size_bytes: float) -> bool:
        budget = self._budget()
        return budget is None or size_bytes <= budget + 1e-6

    def _result(self, configuration: IndexConfiguration,
                trace: List[SearchStep]) -> SearchResult:
        benefit = self._evaluate(configuration)
        return SearchResult(algorithm=self.algorithm, configuration=configuration,
                            benefit=benefit, budget_bytes=self._budget(),
                            trace=trace, evaluations_performed=self._evaluations)

    # -- interface --------------------------------------------------------
    def search(self, candidates: CandidateSet,
               dag: Optional[GeneralizationDag] = None) -> SearchResult:
        raise NotImplementedError


class GreedySearch(_SearchBase):
    """Plain greedy 0/1-knapsack approximation (no redundancy handling)."""

    algorithm = SearchAlgorithm.GREEDY

    def search(self, candidates: CandidateSet,
               dag: Optional[GeneralizationDag] = None) -> SearchResult:
        trace: List[SearchStep] = []
        scored: List[Tuple[float, float, float, CandidateIndex, IndexDefinition]] = []
        for candidate in candidates:
            definition = self._definition_for(candidate)
            size = self.evaluator.index_size_bytes(definition)
            benefit = self._evaluate(IndexConfiguration([definition])).total_benefit
            if benefit <= 0:
                trace.append(SearchStep("skip (no benefit)", candidate.pattern.to_text()))
                continue
            ratio = benefit / max(size, 1.0)
            scored.append((ratio, benefit, size, candidate, definition))
        scored.sort(key=lambda item: item[0], reverse=True)

        configuration = IndexConfiguration(name="greedy")
        used_bytes = 0.0
        for ratio, benefit, size, candidate, definition in scored:
            if not self._fits(used_bytes + size):
                trace.append(SearchStep("skip (budget)", candidate.pattern.to_text(),
                                        f"size {size / 1024:.1f} KiB"))
                continue
            configuration.add(definition)
            used_bytes += size
            trace.append(SearchStep("add", candidate.pattern.to_text(),
                                    f"benefit/size ratio {ratio:.3f}"))
        return self._result(configuration, trace)


class GreedyWithHeuristicsSearch(_SearchBase):
    """Greedy search with the paper's redundancy heuristics."""

    algorithm = SearchAlgorithm.GREEDY_HEURISTIC

    def search(self, candidates: CandidateSet,
               dag: Optional[GeneralizationDag] = None) -> SearchResult:
        if self._incremental:
            return self._search_lazy(candidates)
        return self._search_full(candidates)

    # -- lazy-greedy (CELF-style) -----------------------------------------
    def _search_lazy(self, candidates: CandidateSet) -> SearchResult:
        trace: List[SearchStep] = []
        configuration = IndexConfiguration(name="greedy-heuristic")
        current = self._evaluate(configuration)
        covered_predicates: Set[str] = set()
        budget = self._budget()

        #: Queries whose cost under a growing configuration is *not*
        #: guaranteed to make cached marginal gains upper bounds: a
        #: multi-predicate query's index-ANDing plan can make an index
        #: *more* attractive once a partner index is present.  Gains of
        #: candidates overlapping a dirtied volatile query are
        #: re-evaluated eagerly; single-predicate queries (best single
        #: leg, monotone) and updates (additive maintenance) stay lazy.
        volatile_ids = frozenset(
            query.query_id for query in self.evaluator.queries
            if not query.is_update and len(query.predicates) >= 2)

        by_key: Dict[Tuple[str, str], CandidateIndex] = {}
        definitions: Dict[Tuple[str, str], IndexDefinition] = {}
        sizes: Dict[Tuple[str, str], float] = {}
        seqs: Dict[Tuple[str, str], int] = {}
        relevance: Dict[Tuple[str, str], FrozenSet[str]] = {}
        #: key -> (gain, config version the gain was computed at).  A
        #: gain stays a valid upper bound until an addition touches one
        #: of the candidate's affected queries.
        gains: Dict[Tuple[str, str], Tuple[float, int]] = {}
        #: Monotonic count of configuration additions; per-query version
        #: of the last addition that affected the query.
        change_version = 0
        query_version: Dict[str, int] = {}
        #: Heap entries: (-ratio, insertion seq, key, gain version).
        #: Insertion order breaks ties exactly like the legacy
        #: first-max scan; the version lets superseded duplicates (left
        #: behind by eager re-evaluation) be discarded on pop.
        heap: List[Tuple[float, int, Tuple[str, str], int]] = []
        #: Entries that did not fit the budget when popped; re-inserted
        #: only after an eviction frees space (the configuration never
        #: shrinks otherwise).
        parked: List[Tuple[float, int, Tuple[str, str], int]] = []

        def compute_gain(key: Tuple[str, str]) -> float:
            extended = self._update(current, add=[definitions[key]])
            return extended.total_benefit - current.total_benefit

        def push(key: Tuple[str, str], gain: float) -> None:
            gains[key] = (gain, change_version)
            heapq.heappush(heap, (-(gain / max(sizes[key], 1.0)),
                                  seqs[key], key, change_version))

        def is_stale(key: Tuple[str, str], version: int) -> bool:
            for query_id in relevance[key]:
                if query_version.get(query_id, 0) > version:
                    return True
            return False

        for seq, candidate in enumerate(candidates):
            key = candidate.key
            definition = self._definition_for(candidate)
            size = self.evaluator.index_size_bytes(definition)
            if budget is not None and size > budget + 1e-6:
                continue  # can never fit, even into an empty configuration
            if not self._covered_patterns(candidate):
                continue  # covers no workload pattern: redundant forever
            by_key[key] = candidate
            definitions[key] = definition
            sizes[key] = size
            seqs[key] = seq
            relevance[key] = self.evaluator.relevant_queries(definition)
            push(key, compute_gain(key))

        while heap:
            neg_ratio, seq, key, entry_version = heapq.heappop(heap)
            candidate = by_key.get(key)
            if candidate is None:
                continue  # already selected or dropped
            if entry_version != gains[key][1]:
                continue  # superseded by an eager re-evaluation
            if not self._newly_covered(candidate, covered_predicates):
                # Redundant: every workload pattern it would serve is
                # already covered.  The covered set only grows, so the
                # candidate can be dropped for good.
                del by_key[key]
                continue
            size = sizes[key]
            if not self._fits(current.total_size_bytes + size):
                parked.append((neg_ratio, seq, key, entry_version))
                continue
            gain, version = gains[key]
            if is_stale(key, version):
                push(key, compute_gain(key))
                continue
            if gain / max(size, 1.0) <= _MIN_RATIO:
                # The fresh head's ratio is below the selection floor,
                # and it bounds every remaining entry's ratio: nothing
                # left is selectable (mirrors the legacy scan finding no
                # ratio above ``best_ratio + 1e-12``).
                break
            if gain <= _MIN_GAIN:
                # Ineligible now; only an eager volatile re-evaluation
                # can revive it, so drop this entry (not the candidate).
                continue
            # Select the head: its gain is current, and every other
            # entry's (upper-bound) ratio is at most this one's.  The
            # delta update re-costs only the affected queries, all of
            # which are already in the per-query cache from the gain
            # computation when nothing changed in between.  It must run
            # before ``configuration`` is mutated: the update is applied
            # against ``current.configuration``, which aliases
            # ``configuration`` until the first delta de-aliases it.
            del by_key[key]
            definition = definitions[key]
            current = self._update(current, add=[definition])
            configuration.add(definition)
            covered_predicates.update(self._covered_patterns(candidate))
            trace.append(SearchStep("add", candidate.pattern.to_text(),
                                    f"marginal benefit {gain:.1f}, "
                                    f"ratio {gain / max(size, 1.0):.4f}"))
            affected = relevance[key]
            change_version += 1
            for query_id in affected:
                query_version[query_id] = change_version
            volatile_dirty = affected & volatile_ids
            if volatile_dirty:
                # Gains touching a dirtied multi-predicate query may have
                # *risen* (ANDing synergy), so their stale heap entries
                # are not upper bounds; re-evaluate them eagerly and let
                # the version check discard the superseded entries.
                for other_key in list(by_key):
                    if not relevance[other_key] & volatile_dirty:
                        continue
                    other = by_key[other_key]
                    if not self._newly_covered(other, covered_predicates):
                        del by_key[other_key]
                        continue
                    push(other_key, compute_gain(other_key))
            evicted = current.unused_indexes
            if evicted:
                # Evicted indexes were used by no plan, so current costs
                # are unchanged and size shrinks, which can let parked
                # candidates back in.  Cached gains overlapping a
                # volatile query may still have priced an ANDing plan
                # with the evicted index, so mark those queries dirty --
                # losing a partner can only *lower* such gains, so the
                # stale values stay upper bounds and lazy re-evaluation
                # at the heap head remains exact.
                evicted_volatile: Set[str] = set()
                for index in evicted:
                    evicted_volatile |= (
                        self.evaluator.relevant_queries(index) & volatile_ids)
                if evicted_volatile:
                    change_version += 1
                    for query_id in evicted_volatile:
                        query_version[query_id] = change_version
                current = self._update(current, remove=evicted)
                for index in evicted:
                    configuration.remove(index)
                    trace.append(SearchStep("evict (unused)",
                                            index.pattern.to_text()))
                if parked:
                    for entry in parked:
                        heapq.heappush(heap, entry)
                    parked = []
        return self._result(configuration, trace)

    # -- legacy exhaustive loop -------------------------------------------
    def _search_full(self, candidates: CandidateSet) -> SearchResult:
        trace: List[SearchStep] = []
        remaining: Dict[Tuple[str, str], CandidateIndex] = {
            c.key: c for c in candidates}
        configuration = IndexConfiguration(name="greedy-heuristic")
        current = self._evaluate(configuration)
        #: The redundancy bitmap: workload predicate patterns already
        #: covered by some chosen index.
        covered_predicates: Set[str] = set()

        while remaining:
            best_key: Optional[Tuple[str, str]] = None
            best_ratio = 0.0
            best_gain = 0.0
            best_definition: Optional[IndexDefinition] = None
            for key, candidate in remaining.items():
                definition = self._definition_for(candidate)
                size = self.evaluator.index_size_bytes(definition)
                if not self._fits(current.total_size_bytes + size):
                    continue
                newly_covered = self._newly_covered(candidate, covered_predicates)
                if not newly_covered:
                    # Redundant: every workload pattern it would serve is
                    # already covered by the chosen configuration.
                    continue
                gain = self.evaluator.marginal_benefit(current, definition)
                self._evaluations += 1
                if gain <= _MIN_GAIN:
                    continue
                ratio = gain / max(size, 1.0)
                # Strict comparison (first max in iteration order wins
                # ties) -- the exact semantics of the lazy heap's
                # (-ratio, insertion seq) ordering, so the two paths
                # cannot diverge on near-tied ratios.
                if ratio > best_ratio and ratio > _MIN_RATIO:
                    best_ratio = ratio
                    best_gain = gain
                    best_key = key
                    best_definition = definition
            if best_key is None or best_definition is None:
                break
            candidate = remaining.pop(best_key)
            configuration.add(best_definition)
            current = self._evaluate(configuration)
            covered_predicates.update(self._covered_patterns(candidate))
            trace.append(SearchStep("add", candidate.pattern.to_text(),
                                    f"marginal benefit {best_gain:.1f}, "
                                    f"ratio {best_ratio:.4f}"))
            # Reclaim space from indexes that no query plan uses any more.
            evicted = self._evict_unused(configuration, current, trace)
            if evicted:
                current = self._evaluate(configuration)
        return self._result(configuration, trace)

    # -- heuristics -------------------------------------------------------
    def _covered_patterns(self, candidate: CandidateIndex) -> Set[str]:
        return {predicate.pattern.to_text()
                for predicate in candidate.covered_predicates}

    def _newly_covered(self, candidate: CandidateIndex,
                       covered: Set[str]) -> Set[str]:
        return self._covered_patterns(candidate) - covered

    def _evict_unused(self, configuration: IndexConfiguration,
                      current: ConfigurationBenefit,
                      trace: List[SearchStep]) -> List[IndexDefinition]:
        """Remove configuration members no query plan uses (space reclaim).

        Returns the evicted definitions (empty list when none)."""
        evicted: List[IndexDefinition] = []
        for index in current.unused_indexes:
            configuration.remove(index)
            trace.append(SearchStep("evict (unused)", index.pattern.to_text()))
            evicted.append(index)
        return evicted


class TopDownSearch(_SearchBase):
    """Root-to-leaf search through the generalization DAG."""

    algorithm = SearchAlgorithm.TOP_DOWN

    def search(self, candidates: CandidateSet,
               dag: Optional[GeneralizationDag] = None) -> SearchResult:
        if dag is None:
            dag = GeneralizationDag(candidates)
        trace: List[SearchStep] = []

        configuration = IndexConfiguration(name="top-down")
        members: Dict[Tuple[str, str], CandidateIndex] = {}
        #: Victim queue: (-size, insertion seq, key).  Index sizes never
        #: change, so the heap never goes stale; popped keys that left
        #: ``members`` are skipped.
        victim_heap: List[Tuple[float, int, Tuple[str, str]]] = []
        insertion_seq = 0

        def admit(candidate: CandidateIndex) -> IndexDefinition:
            nonlocal insertion_seq
            definition = self._definition_for(candidate)
            members[candidate.key] = candidate
            heapq.heappush(victim_heap,
                           (-self.evaluator.index_size_bytes(definition),
                            insertion_seq, candidate.key))
            insertion_seq += 1
            return definition

        for root in dag.roots:
            configuration.add(admit(root))
            trace.append(SearchStep("start from root", root.pattern.to_text()))

        current = self._evaluate(configuration)
        # Progressively replace general indexes by their children until the
        # configuration fits the budget.  Delta updates are applied
        # against ``current.configuration`` *before* the local
        # ``configuration`` mirror is mutated (the two alias each other
        # until the first delta de-aliases them).
        guard = 0
        max_iterations = 4 * max(1, len(candidates))
        while not self._fits(current.total_size_bytes) and guard < max_iterations:
            guard += 1
            victim = self._pick_victim(members, current, victim_heap)
            if victim is None:
                break
            victim_definition = self._definition_for(victim)
            del members[victim.key]
            children = dag.children_of(victim)
            added_definitions: List[IndexDefinition] = []
            if children:
                for child in children:
                    if child.key in members:
                        continue
                    # Do not add a child that is already covered by a more
                    # general member still in the configuration: the goal is
                    # the most general set, not a redundant one.
                    if any(member.covers_candidate(child)
                           for member in members.values()):
                        continue
                    added_definitions.append(admit(child))
                trace.append(SearchStep(
                    "replace by children", victim.pattern.to_text(),
                    f"{len(added_definitions)} child(ren) added"))
            else:
                trace.append(SearchStep("drop (leaf over budget)",
                                        victim.pattern.to_text()))
            if self._incremental:
                current = self._update(current, add=added_definitions,
                                       remove=[victim_definition])
            configuration.remove(victim_definition)
            for definition in added_definitions:
                configuration.add(definition)
            if not self._incremental:
                current = self._evaluate(configuration)

        # Final trim: if still over budget (e.g. even leaves do not fit),
        # drop the smallest-benefit members until it fits.
        while not self._fits(current.total_size_bytes) and len(configuration) > 0:
            worst = self._least_valuable(configuration, current)
            if worst is None:
                break
            members.pop(worst.key, None)
            trace.append(SearchStep("drop (budget trim)", worst.pattern.to_text()))
            if self._incremental:
                current = self._update(current, remove=[worst])
            configuration.remove(worst)
            if not self._incremental:
                current = self._evaluate(configuration)
        return self._result(configuration, trace)

    # -- victim selection ---------------------------------------------------
    def _pick_victim(self, members: Dict[Tuple[str, str], CandidateIndex],
                     current: ConfigurationBenefit,
                     victim_heap: Optional[List[Tuple[float, int, Tuple[str, str]]]]
                     = None) -> Optional[CandidateIndex]:
        """The member whose replacement frees the most space: the largest
        index, breaking ties toward the least-generality loss (fewest
        benefiting queries)."""
        if self._incremental and victim_heap is not None:
            while victim_heap:
                _, _, key = heapq.heappop(victim_heap)
                candidate = members.get(key)
                if candidate is not None:
                    return candidate
            return None
        victim: Optional[CandidateIndex] = None
        victim_size = -1.0
        for key, candidate in members.items():
            size = current.index_sizes.get(key)
            if size is None:
                size = self.evaluator.index_size_bytes(self._definition_for(candidate))
            if size > victim_size:
                victim_size = size
                victim = candidate
        return victim

    def _least_valuable(self, configuration: IndexConfiguration,
                        current: ConfigurationBenefit) -> Optional[IndexDefinition]:
        used = current.used_index_keys
        # Prefer dropping unused indexes, then the largest one.
        unused = [index for index in configuration if index.key not in used]
        pool = unused or configuration.definitions
        if not pool:
            return None
        return max(pool, key=lambda index: current.index_sizes.get(
            index.key, self.evaluator.index_size_bytes(index)))


def create_search(algorithm: SearchAlgorithm, evaluator: ConfigurationEvaluator,
                  parameters: Optional[AdvisorParameters] = None) -> _SearchBase:
    """Factory mapping a :class:`SearchAlgorithm` to its implementation."""
    if algorithm is SearchAlgorithm.GREEDY:
        return GreedySearch(evaluator, parameters)
    if algorithm is SearchAlgorithm.GREEDY_HEURISTIC:
        return GreedyWithHeuristicsSearch(evaluator, parameters)
    if algorithm is SearchAlgorithm.TOP_DOWN:
        return TopDownSearch(evaluator, parameters)
    raise ValueError(f"unknown search algorithm: {algorithm!r}")
