"""Configuration enumeration: searching for the best index configuration.

Three strategies are provided (Section 2.3):

:class:`GreedySearch`
    The relational-advisor baseline [8]: rank candidates once by
    benefit-per-byte and add them while the disk budget allows.  No
    redundancy detection -- a general index can be picked even though
    the patterns it covers are already covered, wasting budget.

:class:`GreedyWithHeuristicsSearch`
    The paper's first algorithm: greedy search augmented with heuristics
    that (a) maintain a bitmap of workload path expressions already
    covered by the chosen configuration and never admit an index that
    covers nothing new, (b) re-evaluate marginal benefits as the
    configuration grows (capturing index interaction), and (c) evict
    indexes that end up unused by every query plan, reclaiming their
    space for more useful indexes.

:class:`TopDownSearch`
    The paper's second algorithm: start from the roots of the
    generalization DAG (the most general candidates -- maximum benefit,
    usually over budget) and repeatedly replace the index with the worst
    size-to-benefit contribution by its more specific DAG children until
    the configuration fits in the budget.  The goal is the most general
    configuration that fits, which is the right choice when the training
    workload is only representative of the real one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.advisor.benefit import ConfigurationBenefit, ConfigurationEvaluator
from repro.advisor.candidates import CandidateIndex, CandidateSet
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.dag import GeneralizationDag
from repro.index.definition import IndexConfiguration, IndexDefinition


@dataclass
class SearchStep:
    """One step of a search trace (for the Figure 4 style walkthrough)."""

    action: str
    index_pattern: str
    detail: str = ""

    def describe(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.action}: {self.index_pattern}{suffix}"


@dataclass
class SearchResult:
    """Outcome of one configuration search."""

    algorithm: SearchAlgorithm
    configuration: IndexConfiguration
    benefit: ConfigurationBenefit
    budget_bytes: Optional[float]
    trace: List[SearchStep] = field(default_factory=list)
    evaluations_performed: int = 0

    @property
    def size_bytes(self) -> float:
        return self.benefit.total_size_bytes

    @property
    def fits_budget(self) -> bool:
        if self.budget_bytes is None:
            return True
        return self.size_bytes <= self.budget_bytes + 1e-6

    def describe(self) -> str:
        budget = ("unlimited" if self.budget_bytes is None
                  else f"{self.budget_bytes / 1024:.0f} KiB")
        return (f"{self.algorithm.value} search: {len(self.configuration)} index(es), "
                f"benefit {self.benefit.total_benefit:.1f}, "
                f"size {self.size_bytes / 1024:.1f} KiB (budget {budget}), "
                f"{self.evaluations_performed} configuration evaluations")


class _SearchBase:
    """Shared plumbing for the three search strategies."""

    algorithm: SearchAlgorithm

    def __init__(self, evaluator: ConfigurationEvaluator,
                 parameters: Optional[AdvisorParameters] = None) -> None:
        self.evaluator = evaluator
        self.parameters = parameters or AdvisorParameters()
        self._evaluations = 0

    # -- helpers ---------------------------------------------------------
    def _evaluate(self, configuration: IndexConfiguration) -> ConfigurationBenefit:
        self._evaluations += 1
        return self.evaluator.evaluate(configuration)

    def _definition_for(self, candidate: CandidateIndex) -> IndexDefinition:
        return candidate.to_definition(is_virtual=True)

    def _budget(self) -> Optional[float]:
        return self.parameters.disk_budget_bytes

    def _fits(self, size_bytes: float) -> bool:
        budget = self._budget()
        return budget is None or size_bytes <= budget + 1e-6

    def _result(self, configuration: IndexConfiguration,
                trace: List[SearchStep]) -> SearchResult:
        benefit = self._evaluate(configuration)
        return SearchResult(algorithm=self.algorithm, configuration=configuration,
                            benefit=benefit, budget_bytes=self._budget(),
                            trace=trace, evaluations_performed=self._evaluations)

    # -- interface --------------------------------------------------------
    def search(self, candidates: CandidateSet,
               dag: Optional[GeneralizationDag] = None) -> SearchResult:
        raise NotImplementedError


class GreedySearch(_SearchBase):
    """Plain greedy 0/1-knapsack approximation (no redundancy handling)."""

    algorithm = SearchAlgorithm.GREEDY

    def search(self, candidates: CandidateSet,
               dag: Optional[GeneralizationDag] = None) -> SearchResult:
        trace: List[SearchStep] = []
        scored: List[Tuple[float, float, CandidateIndex, IndexDefinition]] = []
        for candidate in candidates:
            definition = self._definition_for(candidate)
            size = self.evaluator.index_size_bytes(definition)
            benefit = self._evaluate(IndexConfiguration([definition])).total_benefit
            if benefit <= 0:
                trace.append(SearchStep("skip (no benefit)", candidate.pattern.to_text()))
                continue
            ratio = benefit / max(size, 1.0)
            scored.append((ratio, benefit, candidate, definition))
        scored.sort(key=lambda item: item[0], reverse=True)

        configuration = IndexConfiguration(name="greedy")
        used_bytes = 0.0
        for ratio, benefit, candidate, definition in scored:
            size = self.evaluator.index_size_bytes(definition)
            if not self._fits(used_bytes + size):
                trace.append(SearchStep("skip (budget)", candidate.pattern.to_text(),
                                        f"size {size / 1024:.1f} KiB"))
                continue
            configuration.add(definition)
            used_bytes += size
            trace.append(SearchStep("add", candidate.pattern.to_text(),
                                    f"benefit/size ratio {ratio:.3f}"))
        return self._result(configuration, trace)


class GreedyWithHeuristicsSearch(_SearchBase):
    """Greedy search with the paper's redundancy heuristics."""

    algorithm = SearchAlgorithm.GREEDY_HEURISTIC

    def search(self, candidates: CandidateSet,
               dag: Optional[GeneralizationDag] = None) -> SearchResult:
        trace: List[SearchStep] = []
        remaining: Dict[Tuple[str, str], CandidateIndex] = {
            c.key: c for c in candidates}
        configuration = IndexConfiguration(name="greedy-heuristic")
        current = self._evaluate(configuration)
        #: The redundancy bitmap: workload predicate patterns already
        #: covered by some chosen index.
        covered_predicates: Set[str] = set()

        while remaining:
            best_key: Optional[Tuple[str, str]] = None
            best_ratio = 0.0
            best_gain = 0.0
            best_definition: Optional[IndexDefinition] = None
            for key, candidate in remaining.items():
                definition = self._definition_for(candidate)
                size = self.evaluator.index_size_bytes(definition)
                if not self._fits(current.total_size_bytes + size):
                    continue
                newly_covered = self._newly_covered(candidate, covered_predicates)
                if not newly_covered:
                    # Redundant: every workload pattern it would serve is
                    # already covered by the chosen configuration.
                    continue
                gain = self.evaluator.marginal_benefit(current, definition)
                self._evaluations += 1
                if gain <= 1e-9:
                    continue
                ratio = gain / max(size, 1.0)
                if ratio > best_ratio + 1e-12:
                    best_ratio = ratio
                    best_gain = gain
                    best_key = key
                    best_definition = definition
            if best_key is None or best_definition is None:
                break
            candidate = remaining.pop(best_key)
            configuration.add(best_definition)
            current = self._evaluate(configuration)
            covered_predicates.update(self._covered_patterns(candidate))
            trace.append(SearchStep("add", candidate.pattern.to_text(),
                                    f"marginal benefit {best_gain:.1f}, "
                                    f"ratio {best_ratio:.4f}"))
            # Reclaim space from indexes that no query plan uses any more.
            evicted = self._evict_unused(configuration, current, trace)
            if evicted:
                current = self._evaluate(configuration)
        return self._result(configuration, trace)

    # -- heuristics -------------------------------------------------------
    def _covered_patterns(self, candidate: CandidateIndex) -> Set[str]:
        return {predicate.pattern.to_text()
                for predicate in candidate.covered_predicates}

    def _newly_covered(self, candidate: CandidateIndex,
                       covered: Set[str]) -> Set[str]:
        return self._covered_patterns(candidate) - covered

    def _evict_unused(self, configuration: IndexConfiguration,
                      current: ConfigurationBenefit,
                      trace: List[SearchStep]) -> bool:
        """Remove configuration members no query plan uses (space reclaim)."""
        unused = current.unused_indexes
        evicted = False
        for index in unused:
            configuration.remove(index)
            trace.append(SearchStep("evict (unused)", index.pattern.to_text()))
            evicted = True
        return evicted


class TopDownSearch(_SearchBase):
    """Root-to-leaf search through the generalization DAG."""

    algorithm = SearchAlgorithm.TOP_DOWN

    def search(self, candidates: CandidateSet,
               dag: Optional[GeneralizationDag] = None) -> SearchResult:
        if dag is None:
            dag = GeneralizationDag(candidates)
        trace: List[SearchStep] = []

        configuration = IndexConfiguration(name="top-down")
        members: Dict[Tuple[str, str], CandidateIndex] = {}
        for root in dag.roots:
            definition = self._definition_for(root)
            configuration.add(definition)
            members[root.key] = root
            trace.append(SearchStep("start from root", root.pattern.to_text()))

        current = self._evaluate(configuration)
        # Progressively replace general indexes by their children until the
        # configuration fits the budget.
        guard = 0
        max_iterations = 4 * max(1, len(candidates))
        while not self._fits(current.total_size_bytes) and guard < max_iterations:
            guard += 1
            victim = self._pick_victim(members, current)
            if victim is None:
                break
            victim_definition = self._definition_for(victim)
            configuration.remove(victim_definition)
            del members[victim.key]
            children = dag.children_of(victim)
            if children:
                added = 0
                for child in children:
                    if child.key in members:
                        continue
                    # Do not add a child that is already covered by a more
                    # general member still in the configuration: the goal is
                    # the most general set, not a redundant one.
                    if any(member.covers_candidate(child)
                           for member in members.values()):
                        continue
                    child_definition = self._definition_for(child)
                    configuration.add(child_definition)
                    members[child.key] = child
                    added += 1
                trace.append(SearchStep(
                    "replace by children", victim.pattern.to_text(),
                    f"{added} child(ren) added"))
            else:
                trace.append(SearchStep("drop (leaf over budget)",
                                        victim.pattern.to_text()))
            current = self._evaluate(configuration)

        # Final trim: if still over budget (e.g. even leaves do not fit),
        # drop the smallest-benefit members until it fits.
        while not self._fits(current.total_size_bytes) and len(configuration) > 0:
            worst = self._least_valuable(configuration, current)
            if worst is None:
                break
            configuration.remove(worst)
            members.pop(worst.key, None)
            trace.append(SearchStep("drop (budget trim)", worst.pattern.to_text()))
            current = self._evaluate(configuration)
        return self._result(configuration, trace)

    # -- victim selection ---------------------------------------------------
    def _pick_victim(self, members: Dict[Tuple[str, str], CandidateIndex],
                     current: ConfigurationBenefit) -> Optional[CandidateIndex]:
        """The member whose replacement frees the most space: the largest
        index, breaking ties toward the least-generality loss (fewest
        benefiting queries)."""
        victim: Optional[CandidateIndex] = None
        victim_size = -1.0
        for key, candidate in members.items():
            size = current.index_sizes.get(key)
            if size is None:
                size = self.evaluator.index_size_bytes(self._definition_for(candidate))
            if size > victim_size:
                victim_size = size
                victim = candidate
        return victim

    def _least_valuable(self, configuration: IndexConfiguration,
                        current: ConfigurationBenefit) -> Optional[IndexDefinition]:
        used = current.used_index_keys
        # Prefer dropping unused indexes, then the largest one.
        unused = [index for index in configuration if index.key not in used]
        pool = unused or configuration.definitions
        if not pool:
            return None
        return max(pool, key=lambda index: current.index_sizes.get(
            index.key, self.evaluator.index_size_bytes(index)))


def create_search(algorithm: SearchAlgorithm, evaluator: ConfigurationEvaluator,
                  parameters: Optional[AdvisorParameters] = None) -> _SearchBase:
    """Factory mapping a :class:`SearchAlgorithm` to its implementation."""
    if algorithm is SearchAlgorithm.GREEDY:
        return GreedySearch(evaluator, parameters)
    if algorithm is SearchAlgorithm.GREEDY_HEURISTIC:
        return GreedyWithHeuristicsSearch(evaluator, parameters)
    if algorithm is SearchAlgorithm.TOP_DOWN:
        return TopDownSearch(evaluator, parameters)
    raise ValueError(f"unknown search algorithm: {algorithm!r}")
