"""The end-to-end XML Index Advisor.

:class:`XmlIndexAdvisor` wires the whole pipeline of Figure 1 together:
workload normalization, basic candidate enumeration (Enumerate Indexes
mode), candidate generalization into the DAG, configuration search under
the disk budget (Evaluate Indexes mode inside the benefit evaluator),
and packaging of the result as a :class:`Recommendation` that the
analysis tooling, the CLI, and the benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.advisor.benefit import ConfigurationBenefit, ConfigurationEvaluator
from repro.advisor.candidates import CandidateSet, enumerate_basic_candidates
from repro.advisor.config import AdvisorParameters, SearchAlgorithm
from repro.advisor.dag import GeneralizationDag
from repro.advisor.enumeration import SearchResult, create_search
from repro.advisor.generalization import GeneralizationResult, generalize_candidates
from repro.faults import guarded_fault_point
from repro.index.definition import IndexConfiguration, IndexDefinition
from repro.optimizer.optimizer import Optimizer
from repro.storage.document_store import XmlDatabase
from repro.telemetry import MetricsRegistry, global_registry, wall_clock
from repro.xquery.model import NormalizedQuery, Workload
from repro.xquery.normalizer import normalize_workload


@dataclass
class Recommendation:
    """Everything the advisor produced for one session."""

    #: The recommended configuration (what the DBA should create).
    configuration: IndexConfiguration
    #: Benefit/size/per-query breakdown of the recommendation.
    benefit: ConfigurationBenefit
    #: All candidates considered (basic + generalized).
    candidates: CandidateSet
    #: The generalization DAG over those candidates.
    dag: GeneralizationDag
    #: The search trace (which indexes were added/evicted/replaced and why).
    search_result: SearchResult
    #: The normalized workload the recommendation was computed for.
    queries: List[NormalizedQuery] = field(default_factory=list)
    #: Parameters the session ran with.
    parameters: AdvisorParameters = field(default_factory=AdvisorParameters)
    #: Wall-clock seconds spent in each phase.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Footprint of the database's columnar pre/post encoding at
    #: recommendation time (statistics-derived, identical in both
    #: ``use_columnar`` modes), so size reports show the base storage
    #: the recommended indexes sit on top of.
    base_columnar_bytes: int = 0

    # ------------------------------------------------------------------
    @property
    def total_benefit(self) -> float:
        return self.benefit.total_benefit

    @property
    def total_size_bytes(self) -> float:
        return self.benefit.total_size_bytes

    @property
    def index_definitions(self) -> List[IndexDefinition]:
        return self.configuration.definitions

    def ddl_statements(self) -> List[str]:
        """CREATE INDEX statements for the recommended configuration."""
        return [index.ddl() for index in self.configuration]

    def improvement_percent(self) -> float:
        """Estimated workload cost reduction, as a percentage."""
        baseline = sum(e.cost_without_indexes * e.frequency
                       for e in self.benefit.query_evaluations)
        if baseline <= 0:
            return 0.0
        with_config = sum(e.cost_with_configuration * e.frequency
                          for e in self.benefit.query_evaluations)
        return 100.0 * (baseline - with_config) / baseline

    def describe(self) -> str:
        lines = [
            f"recommended configuration ({self.search_result.algorithm.value} search):",
            f"  {len(self.configuration)} index(es), "
            f"size {self.total_size_bytes / 1024:.1f} KiB "
            f"(over {self.base_columnar_bytes / 1024:.1f} KiB of columnar "
            f"base storage), "
            f"estimated improvement {self.improvement_percent():.1f}%",
        ]
        for index in self.configuration:
            size = self.benefit.index_sizes.get(index.key, 0.0)
            lines.append(f"    {index.pattern.to_text()} [{index.value_type.value}] "
                         f"(~{size / 1024:.1f} KiB)")
        return "\n".join(lines)


class XmlIndexAdvisor:
    """The client-side advisor application of Figure 1.

    Parameters
    ----------
    database:
        The XML database to tune (documents + catalog + statistics).
    parameters:
        Session parameters (disk budget, search algorithm, ...).
    """

    def __init__(self, database: XmlDatabase,
                 parameters: Optional[AdvisorParameters] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.database = database
        self.parameters = parameters or AdvisorParameters()
        self.parameters.validate()
        #: Session-level metrics; the optimizer and every evaluator this
        #: advisor builds chain their registries here, so one snapshot
        #: covers the whole pipeline.
        self.metrics = MetricsRegistry(
            parent=registry if registry is not None else global_registry())
        self.optimizer = Optimizer(
            database, self.parameters.cost_parameters,
            enable_plan_cache=self.parameters.enable_plan_cache,
            enable_fine_grained_invalidation=(
                self.parameters.use_incremental_maintenance),
            use_collection_costing=self.parameters.use_collection_costing,
            registry=self.metrics)

    # ------------------------------------------------------------------
    # Pipeline steps (exposed individually for the demo/benchmarks)
    # ------------------------------------------------------------------
    def normalize(self, workload: "Union[Workload, Sequence[str], Sequence[NormalizedQuery]]"
                  ) -> List[NormalizedQuery]:
        """Normalize a workload into the internal query list.

        Accepts a :class:`Workload`, a plain list of statement strings,
        a list of already-normalized queries (passed through untouched),
        or any object exposing a ``queries`` list of normalized queries
        -- in particular the online tuning subsystem's
        :class:`~repro.tuning.compressor.CompressedWorkload`, whose
        representative queries carry their aggregated captured weights
        as frequencies.
        """
        if isinstance(workload, Workload):
            return normalize_workload(workload)
        if workload is None:
            return normalize_workload(Workload(name="adhoc"))
        queries = getattr(workload, "queries", None)
        if queries is not None:
            queries = list(queries)
            if all(isinstance(query, NormalizedQuery) for query in queries):
                return queries
        # Materialize once: the argument may be a one-shot iterable, and
        # the isinstance probe below must not consume it.
        items = list(workload)
        if items and all(isinstance(item, NormalizedQuery) for item in items):
            return items
        return normalize_workload(_as_workload(items))

    def enumerate_candidates(self, queries: Sequence[NormalizedQuery]) -> CandidateSet:
        """Step 1: basic candidates via the Enumerate Indexes mode."""
        return enumerate_basic_candidates(queries, self.database, self.optimizer)

    def generalize(self, candidates: CandidateSet) -> GeneralizationResult:
        """Step 2: expand candidates with the generalization rules."""
        return generalize_candidates(candidates, self.parameters)

    def build_evaluator(self, queries: Sequence[NormalizedQuery]) -> ConfigurationEvaluator:
        """The Evaluate Indexes-backed benefit evaluator for ``queries``."""
        return ConfigurationEvaluator(self.database, queries, self.parameters,
                                      self.optimizer, registry=self.metrics)

    def search(self, candidates: CandidateSet, dag: GeneralizationDag,
               evaluator: ConfigurationEvaluator,
               algorithm: Optional[SearchAlgorithm] = None) -> SearchResult:
        """Step 3: search for the best configuration under the budget."""
        algorithm = algorithm or self.parameters.search_algorithm
        strategy = create_search(algorithm, evaluator, self.parameters)
        return strategy.search(candidates, dag)

    # ------------------------------------------------------------------
    # One-call entry point
    # ------------------------------------------------------------------
    def recommend(self, workload: "Union[Workload, Sequence[str], Sequence[NormalizedQuery]]",
                  algorithm: Optional[SearchAlgorithm] = None,
                  excluded_keys: Optional[FrozenSet[Tuple[str, str]]] = None
                  ) -> Recommendation:
        """Run the full pipeline and return the recommendation.

        Besides a :class:`Workload` or statement strings, this accepts
        already-normalized queries and compressed online workloads (see
        :meth:`normalize`) -- the entry point the online tuning
        controller re-advises through.

        ``excluded_keys`` -- candidate keys (pattern text, value type
        name) that must never be recommended; the online controller
        passes its quarantined definitions here.  The filter runs after
        generalization because the generalization rules can re-create an
        excluded pattern from a surviving one.
        """
        phase_seconds: Dict[str, float] = {}

        start = wall_clock()
        queries = self.normalize(workload)
        phase_seconds["normalize"] = wall_clock() - start

        start = wall_clock()
        basic = self.enumerate_candidates(queries)
        phase_seconds["enumerate"] = wall_clock() - start

        start = wall_clock()
        generalization = self.generalize(basic)
        candidates = generalization.candidates
        dag = generalization.dag
        if excluded_keys:
            candidates = CandidateSet(c for c in candidates
                                      if c.key not in excluded_keys)
            dag = GeneralizationDag(candidates)
        phase_seconds["generalize"] = wall_clock() - start

        start = wall_clock()
        evaluator = self.build_evaluator(queries)
        search_result = self.search(candidates, dag, evaluator, algorithm)
        phase_seconds["search"] = wall_clock() - start

        return Recommendation(
            configuration=search_result.configuration,
            benefit=search_result.benefit,
            candidates=candidates,
            dag=dag,
            search_result=search_result,
            queries=queries,
            parameters=self.parameters,
            phase_seconds=phase_seconds,
            base_columnar_bytes=self.database.statistics.columnar_bytes,
        )

    # ------------------------------------------------------------------
    def create_recommended_indexes(self, recommendation: Recommendation) -> List[IndexDefinition]:
        """Materialize the recommendation in the catalog (as physical
        definitions), as the demo's final step does.

        Returns the physical definitions added.  Building the actual
        index structures for execution is the executor's job
        (:func:`repro.executor.executor.create_indexes`).
        """
        # Consulted before any catalog mutation: a persistent fault
        # leaves the catalog exactly as it was.
        guarded_fault_point("migration.commit")
        created: List[IndexDefinition] = []
        for index in recommendation.configuration:
            physical = index.as_physical()
            if not self.database.catalog.has_index(physical.name):
                self.database.catalog.add_index(physical)
                created.append(physical)
        return created


def _as_workload(statements: Sequence[str]) -> Workload:
    workload = Workload(name="adhoc")
    for statement in statements:
        workload.add(statement)
    return workload
