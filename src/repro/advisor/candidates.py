"""Basic candidate enumeration (Section 2.1 of the paper).

For every query in the workload we invoke the optimizer in Enumerate
Indexes mode; the patterns it reports become
:class:`CandidateIndex` objects.  A candidate remembers which workload
queries it came from, which is later used by the redundancy heuristics
("a bitmap of XPath patterns in the workload queries that have indexes
on them") and by the reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.index.definition import IndexDefinition
from repro.optimizer.explain import enumerate_indexes
from repro.optimizer.optimizer import Optimizer
from repro.storage.document_store import XmlDatabase
from repro.xpath.patterns import PathPattern, pattern_contains
from repro.xquery.model import NormalizedQuery, PathPredicate, ValueType

#: Identity of a candidate: (pattern text, value type name).
CandidateKey = Tuple[str, str]


@dataclass
class CandidateIndex:
    """One candidate index (basic or generalized)."""

    pattern: PathPattern
    value_type: ValueType
    #: "basic" for optimizer-enumerated candidates, "generalized" for
    #: candidates produced by the generalization rules.
    source: str = "basic"
    #: Ids of the workload queries whose predicates this candidate covers.
    benefiting_queries: Set[str] = field(default_factory=set)
    #: The concrete workload predicates this candidate covers.
    covered_predicates: List[PathPredicate] = field(default_factory=list)
    #: Memo of (is_virtual, collection) -> built definition; the search
    #: loops call :meth:`to_definition` once per candidate per round and
    #: the definition is immutable, so one build suffices.
    _definitions: Dict[Tuple[bool, Optional[str]], IndexDefinition] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    @property
    def key(self) -> CandidateKey:
        return (self.pattern.to_text(), self.value_type.value)

    @property
    def is_generalized(self) -> bool:
        return self.source == "generalized"

    def to_definition(self, is_virtual: bool = True,
                      collection: Optional[str] = None) -> IndexDefinition:
        """The index definition this candidate corresponds to (memoized)."""
        cache_key = (is_virtual, collection)
        definition = self._definitions.get(cache_key)
        if definition is None:
            definition = IndexDefinition.create(self.pattern, self.value_type,
                                                collection=collection,
                                                is_virtual=is_virtual)
            self._definitions[cache_key] = definition
        return definition

    def covers(self, predicate: PathPredicate) -> bool:
        """Would an index with this pattern/type be usable for ``predicate``?"""
        if not predicate.is_existence and predicate.value_type is not self.value_type:
            return False
        return pattern_contains(self.pattern, predicate.pattern)

    def covers_candidate(self, other: "CandidateIndex") -> bool:
        """True when this candidate's pattern contains ``other``'s pattern
        (same value type), i.e. this index could replace the other."""
        if self.value_type is not other.value_type:
            return False
        return pattern_contains(self.pattern, other.pattern)

    def describe(self) -> str:
        queries = ",".join(sorted(self.benefiting_queries)) or "-"
        return (f"{self.pattern.to_text()} [{self.value_type.value}] "
                f"({self.source}; queries: {queries})")


class CandidateSet:
    """A duplicate-free, insertion-ordered collection of candidates."""

    def __init__(self, candidates: Optional[Iterable[CandidateIndex]] = None) -> None:
        self._by_key: Dict[CandidateKey, CandidateIndex] = {}
        if candidates:
            for candidate in candidates:
                self.add(candidate)

    # ------------------------------------------------------------------
    def add(self, candidate: CandidateIndex) -> CandidateIndex:
        """Add a candidate, merging query attribution if it already exists."""
        existing = self._by_key.get(candidate.key)
        if existing is None:
            self._by_key[candidate.key] = candidate
            return candidate
        existing.benefiting_queries.update(candidate.benefiting_queries)
        for predicate in candidate.covered_predicates:
            if predicate not in existing.covered_predicates:
                existing.covered_predicates.append(predicate)
        # A candidate that is both basic and generalized stays basic (it
        # was explicitly requested by some query).
        if candidate.source == "basic":
            existing.source = "basic"
        return existing

    def get(self, key: CandidateKey) -> Optional[CandidateIndex]:
        return self._by_key.get(key)

    def __contains__(self, candidate: CandidateIndex) -> bool:
        return candidate.key in self._by_key

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[CandidateIndex]:
        return iter(self._by_key.values())

    # ------------------------------------------------------------------
    @property
    def candidates(self) -> List[CandidateIndex]:
        return list(self._by_key.values())

    @property
    def basic_candidates(self) -> List[CandidateIndex]:
        return [c for c in self._by_key.values() if not c.is_generalized]

    @property
    def generalized_candidates(self) -> List[CandidateIndex]:
        return [c for c in self._by_key.values() if c.is_generalized]

    def by_value_type(self, value_type: ValueType) -> List[CandidateIndex]:
        return [c for c in self._by_key.values() if c.value_type is value_type]

    def copy(self) -> "CandidateSet":
        fresh = CandidateSet()
        for candidate in self._by_key.values():
            fresh.add(CandidateIndex(pattern=candidate.pattern,
                                     value_type=candidate.value_type,
                                     source=candidate.source,
                                     benefiting_queries=set(candidate.benefiting_queries),
                                     covered_predicates=list(candidate.covered_predicates)))
        return fresh

    def describe(self) -> str:
        lines = [f"{len(self._by_key)} candidate(s): "
                 f"{len(self.basic_candidates)} basic, "
                 f"{len(self.generalized_candidates)} generalized"]
        for candidate in self._by_key.values():
            lines.append("  " + candidate.describe())
        return "\n".join(lines)


def enumerate_basic_candidates(queries: Sequence[NormalizedQuery],
                               database: XmlDatabase,
                               optimizer: Optional[Optimizer] = None
                               ) -> CandidateSet:
    """Run Enumerate Indexes mode over every query and pool the results.

    Update statements contribute no candidates (they only contribute
    maintenance cost later), mirroring the paper's pipeline where
    candidates come from query patterns.
    """
    optimizer = optimizer or Optimizer(database)
    candidates = CandidateSet()
    for query in queries:
        if query.is_update:
            continue
        result = enumerate_indexes(query, database, optimizer)
        for spec in result.candidates:
            candidates.add(CandidateIndex(
                pattern=spec.pattern,
                value_type=spec.value_type,
                source="basic",
                benefiting_queries={query.query_id},
                covered_predicates=[spec.predicate],
            ))
    return candidates
