"""Advisor session parameters.

These correspond to the inputs of Figure 1 ("Query workload, XML
Database, System information, Disk space constraint") plus the knobs the
demonstration exposes to the user: which search algorithm to run, how
aggressively to generalize, and whether update cost is charged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.contracts import escape_hatch
from repro.optimizer.cost_model import CostParameters
from repro.storage.pages import PAGE_SIZE_BYTES

escape_hatch("use_incremental",
             "legacy full re-evaluation instead of the incremental "
             "what-if engine (relevance map, delta re-costing, lazy-greedy)")


class SearchAlgorithm(enum.Enum):
    """The configuration-search strategies offered by the advisor."""

    #: Plain greedy 0/1-knapsack approximation (benefit/size ratio, no
    #: redundancy detection) -- the relational-advisor baseline [8].
    GREEDY = "greedy"
    #: Greedy search augmented with the paper's redundancy heuristics.
    GREEDY_HEURISTIC = "greedy-heuristic"
    #: Top-down (root-to-leaf) search through the generalization DAG.
    TOP_DOWN = "top-down"


@dataclass
class AdvisorParameters:
    """All tunables of one advisor session."""

    #: Disk space available for the recommended configuration, in bytes.
    #: ``None`` means unconstrained (the advisor then recommends the full
    #: beneficial candidate set).
    disk_budget_bytes: Optional[float] = None
    #: Which search algorithm to use.
    search_algorithm: SearchAlgorithm = SearchAlgorithm.GREEDY_HEURISTIC
    #: Maximum number of pairwise generalization rounds (fixpoint usually
    #: arrives in two or three rounds for benchmark workloads).
    generalization_rounds: int = 3
    #: Also generate ``prefix//*`` candidates for patterns sharing a prefix.
    enable_prefix_generalization: bool = True
    #: Hard cap on the number of candidates after generalization (safety
    #: valve for adversarial workloads).
    max_candidates: int = 512
    #: Charge index maintenance cost for update statements in the workload.
    account_for_updates: bool = True
    #: Evaluate configurations with index interaction (cost the whole
    #: configuration at once).  Disabling this sums single-index benefits
    #: instead -- only used by the ablation benchmarks.
    model_index_interaction: bool = True
    #: Use the incremental what-if evaluation engine: a precomputed
    #: index-to-affected-queries relevance map, delta re-costing of only
    #: the affected queries in :meth:`ConfigurationEvaluator.update`, and
    #: the lazy-greedy (CELF-style) priority queues in the search
    #: strategies.  Disabling it restores the legacy full re-evaluation
    #: everywhere -- the escape hatch the equivalence tests and the E3
    #: benchmarks compare against.
    use_incremental: bool = True
    #: Propagate document change as a fine-grained delta through the
    #: advisor's derived state: the evaluator's pattern-relevance map
    #: survives data changes (it is data-independent), per-query
    #: costings and baselines are re-costed only when the statistics
    #: they consumed actually moved, memoized index-size estimates are
    #: carried across statistics rebuilds, and the optimizer's plan
    #: cache is evicted collection-scoped instead of wholesale.
    #: Disabling it restores the legacy signature-keyed full
    #: invalidation -- the escape hatch the maintenance equivalence
    #: tests compare against.
    use_incremental_maintenance: bool = True
    #: Memoize what-if optimizer plans by (query, index keys, statistics
    #: signature) on the :class:`~repro.optimizer.optimizer.Optimizer`.
    enable_plan_cache: bool = True
    #: Price every workload statement against the merged synopsis of its
    #: structural *routing set* -- the collections its patterns can
    #: match -- instead of the whole-database aggregates, and key cached
    #: per-query costings to the routing set's per-collection data
    #: versions: a change to one collection then leaves every other
    #: collection's cached costs and plans valid and byte-exact.
    #: Disabling it restores the legacy global cost model (on
    #: single-collection databases the two are byte-identical anyway).
    use_collection_costing: bool = True
    #: Cost model constants handed to the optimizer.
    cost_parameters: CostParameters = field(default_factory=CostParameters)

    # ------------------------------------------------------------------
    @property
    def disk_budget_pages(self) -> Optional[float]:
        if self.disk_budget_bytes is None:
            return None
        return self.disk_budget_bytes / PAGE_SIZE_BYTES

    def validate(self) -> None:
        """Raise ``ValueError`` for nonsensical parameter combinations."""
        if self.disk_budget_bytes is not None and self.disk_budget_bytes < 0:
            raise ValueError("disk budget must be non-negative")
        if self.generalization_rounds < 0:
            raise ValueError("generalization rounds must be non-negative")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be at least 1")

    def describe(self) -> str:
        budget = ("unlimited" if self.disk_budget_bytes is None
                  else f"{self.disk_budget_bytes / 1024:.0f} KiB")
        return (f"advisor parameters: budget={budget}, "
                f"search={self.search_algorithm.value}, "
                f"generalization rounds={self.generalization_rounds}, "
                f"updates {'charged' if self.account_for_updates else 'ignored'}")
