"""Static contract analysis for the repository's own invariants.

``repro.analysis`` is an AST-based checker framework that machine-checks
the contracts declared through :mod:`repro.contracts`:

* :mod:`repro.analysis.core` -- parsed-file model, ``# contract:
  allow[...]`` suppressions, and the *static* extraction of contract
  declarations (``@snapshot_contract``, ``@cache_contract``,
  ``@builder``, ``escape_hatch(...)``, ``deterministic_package(...)``,
  ``injection_site(...)``, ``observe_only_package(...)``,
  ``wall_clock_module(...)``) straight out of the source -- analyzed
  trees are never imported.
* :mod:`repro.analysis.checkers` -- the six contract checkers:
  snapshot-immutability, cache-invalidation, escape-hatch parity,
  determinism (including wall-clock confinement), fault coverage and
  the observe-only telemetry contract.
* :mod:`repro.analysis.runner` -- file discovery and orchestration.
* :mod:`repro.analysis.reporters` -- text and JSON diagnostics output.

Entry point: ``xml-index-advisor lint`` (see :mod:`repro.tools.cli`).
"""

from repro.analysis.core import AnalysisContext, Diagnostic
from repro.analysis.runner import analyze_paths, default_source_root
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "AnalysisContext",
    "Diagnostic",
    "analyze_paths",
    "default_source_root",
    "render_json",
    "render_text",
]
