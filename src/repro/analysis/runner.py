"""Analysis orchestration: discover, parse, extract, check.

:func:`analyze_paths` is the single entry point the CLI and the tests
share.  It runs in two passes over the same parsed trees:

1. **Registration pass** -- every file is scanned for contract
   declarations (:func:`repro.analysis.core.extract_registrations`),
   building the :class:`~repro.analysis.core.AnalysisContext`.  The
   declarations come from the *analyzed* tree, never from imports, so
   pointing the analyzer at a violation fixture picks up the fixture's
   own contracts.
2. **Checker pass** -- every checker visits every file, then runs its
   project-wide check; ``# contract: allow[...]`` suppressions are
   filtered out at the end.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.core import (
    AnalysisContext,
    Diagnostic,
    ParsedFile,
    extract_registrations,
    parse_file,
)

__all__ = ["analyze_paths", "default_source_root", "default_tests_dir"]


def default_source_root() -> Path:
    """The installed ``repro`` package's source directory."""
    import repro
    return Path(repro.__file__).resolve().parent


def default_tests_dir() -> Optional[Path]:
    """``tests/`` next to the source tree (``src/../tests``), if it
    exists."""
    candidate = default_source_root().parent.parent / "tests"
    return candidate if candidate.is_dir() else None


def _discover(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sub for sub in sorted(path.rglob("*.py"))
                         if "__pycache__" not in sub.parts)
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while preserving deterministic order.
    seen = set()
    unique: List[Path] = []
    for path in sorted(files):
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def analyze_paths(paths: Optional[Sequence[Path]] = None,
                  tests_dir: Optional[Path] = None,
                  checkers: Optional[Iterable[object]] = None) \
        -> AnalysisContext:
    """Run the contract analyzer; diagnostics land on the returned
    context as ``context.diagnostics`` (sorted, suppressions applied).
    """
    if paths is None:
        paths = [default_source_root()]
    if tests_dir is None:
        tests_dir = default_tests_dir()
    context = AnalysisContext(tests_dir=tests_dir)

    parsed_files: List[ParsedFile] = []
    for path in _discover(list(paths)):
        parsed_files.append(parse_file(path))
    context.files = parsed_files

    for parsed in parsed_files:
        extract_registrations(parsed, context)

    active = list(checkers) if checkers is not None else list(ALL_CHECKERS)
    by_path: Dict[str, ParsedFile] = {str(parsed.path): parsed
                                      for parsed in parsed_files}
    diagnostics: List[Diagnostic] = []
    for checker in active:
        for parsed in parsed_files:
            diagnostics.extend(checker.check_file(parsed, context))
        diagnostics.extend(checker.check_project(context))

    kept = [diag for diag in diagnostics
            if not (diag.path in by_path
                    and by_path[diag.path].is_suppressed(diag))]
    kept.sort(key=lambda diag: (diag.path, diag.line, diag.col,
                                diag.checker, diag.message))
    context.diagnostics = kept
    return context
