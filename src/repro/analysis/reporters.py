"""Diagnostic rendering: human text and machine JSON."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.core import Diagnostic

__all__ = ["render_text", "render_json"]


def render_text(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """GCC-style one-line-per-finding report with a trailing summary."""
    lines: List[str] = [diag.render() for diag in diagnostics]
    if diagnostics:
        by_checker: dict = {}
        for diag in diagnostics:
            by_checker[diag.checker] = by_checker.get(diag.checker, 0) + 1
        breakdown = ", ".join(f"{name}: {count}" for name, count
                              in sorted(by_checker.items()))
        lines.append(f"{len(diagnostics)} contract violation(s) in "
                     f"{files_checked} file(s) ({breakdown})")
    else:
        lines.append(f"contract analysis clean: {files_checked} file(s), "
                     f"0 violations")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    payload = {
        "files_checked": files_checked,
        "violations": len(diagnostics),
        "diagnostics": [
            {
                "checker": diag.checker,
                "path": diag.path,
                "line": diag.line,
                "col": diag.col,
                "message": diag.message,
            }
            for diag in diagnostics
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
