"""Checker 4: determinism.

Modules under a ``deterministic_package(...)`` scope (the online tuning
subsystem, and anything else that feeds ``WorkloadSnapshot`` /
``TuningEvent`` ordering) must be a pure function of their inputs:

* no wall clocks -- ``time.time`` / ``time.monotonic`` /
  ``time.perf_counter`` and friends, ``datetime.now`` / ``utcnow`` /
  ``today``;
* no ambient randomness -- the module-level ``random`` API (seeded
  ``random.Random(seed)`` instances are fine: they are explicit
  inputs);
* no hash-order leaks -- iterating a bare ``set`` / ``frozenset``
  (``for``, comprehensions, ``list()`` / ``tuple()`` / ``join``
  materialization) without ``sorted()``; under hash randomization the
  visit order, and therefore float accumulation and emitted orderings,
  changes run to run.

Dict iteration is deliberately *not* flagged: CPython dicts are
insertion-ordered, and the subsystem's stores are deterministic-order
dicts by construction.  Set-typedness is inferred locally (literals,
``set()`` / ``frozenset()`` calls, set operators, ``Set``-annotated
names and ``self`` attributes).

The checker also enforces **wall-clock confinement** (PR 10): when the
tree declares a ``wall_clock_module(...)`` -- the audited
:mod:`repro.telemetry.clock` -- every other module under the same
top-level package is forbidden from reading ``time.*`` clocks or
``datetime`` factories directly; wall-clock reads must route through
the audited module's ``wall_clock()``.  Deterministic packages stay
stricter (no clocks at all, audited or not) and are exempted from the
confinement pass only to avoid double-reporting the same call.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import AnalysisContext, Diagnostic, ParsedFile

__all__ = ["DeterminismChecker"]

_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "clock_gettime",
})
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today", "fromtimestamp"})
_SEEDED_RANDOM = frozenset({"Random", "SystemRandom"})
_SET_ANNOTATIONS = frozenset({"Set", "FrozenSet", "MutableSet",
                              "set", "frozenset", "AbstractSet"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _dotted(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_set_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    head = node
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Name):
        return head.id in _SET_ANNOTATIONS
    if isinstance(head, ast.Attribute):
        return head.attr in _SET_ANNOTATIONS
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        return any(head.value.startswith(name) for name in _SET_ANNOTATIONS)
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, parsed: ParsedFile, out: List[Diagnostic]) -> None:
        self.parsed = parsed
        self.out = out
        #: Module aliases: local name -> canonical module name.
        self.modules: Dict[str, str] = {}
        #: Names imported from datetime that are clock factories'
        #: owners (datetime, date).
        self.datetime_names: Set[str] = set()
        #: Names imported from random (local name -> original name).
        self.random_names: Dict[str, str] = {}
        #: Stack of scopes: set-typed local names.
        self.set_vars: List[Set[str]] = [set()]
        #: set-typed ``self.<attr>`` names (per enclosing class).
        self.set_attrs: List[Set[str]] = []

    def _report(self, node: ast.AST, message: str) -> None:
        self.out.append(Diagnostic(
            checker="determinism", path=str(self.parsed.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), message=message))

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = \
                alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date", "time"):
                    self.datetime_names.add(alias.asname or alias.name)
        elif node.module == "random":
            for alias in node.names:
                self.random_names[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    # -- set-typedness inference --------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name in ("set", "frozenset"):
                return True
            # dict_a.keys() - dict_b.keys() style set views are handled
            # through the BinOp branch below only when an operand is a
            # recognized set; bare .keys() views stay insertion-ordered.
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set_expr(node.left) or \
                self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in reversed(self.set_vars))
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self" and self.set_attrs:
            return node.attr in self.set_attrs[-1]
        return False

    def _bind_target(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            if is_set:
                self.set_vars[-1].add(target.id)
            else:
                self.set_vars[-1].discard(target.id)
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self" and self.set_attrs:
            if is_set:
                self.set_attrs[-1].add(target.attr)

    # -- scopes --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.set_attrs.append(set())
        # Pre-scan: annotated set attributes assigned anywhere in the
        # class body (``self._changed: Set[str] = set()`` in __init__).
        for sub in ast.walk(node):
            if isinstance(sub, ast.AnnAssign) and \
                    isinstance(sub.target, ast.Attribute) and \
                    isinstance(sub.target.value, ast.Name) and \
                    sub.target.value.id == "self" and \
                    _is_set_annotation(sub.annotation):
                self.set_attrs[-1].add(sub.target.attr)
        self.generic_visit(node)
        self.set_attrs.pop()

    def _visit_function(self, node: ast.AST) -> None:
        scope: Set[str] = set()
        args = node.args  # type: ignore[attr-defined]
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if _is_set_annotation(arg.annotation):
                scope.add(arg.arg)
        self.set_vars.append(scope)
        self.generic_visit(node)
        self.set_vars.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            self._bind_target(target, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = _is_set_annotation(node.annotation) or (
            node.value is not None and self._is_set_expr(node.value))
        self._bind_target(node.target, is_set)
        self.generic_visit(node)

    # -- clock / randomness checks ------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self._check_materialization(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            origin = self.random_names.get(func.id)
            if origin is not None and origin not in _SEEDED_RANDOM:
                self._report(node, f"ambient randomness: random.{origin} "
                                   f"called in a deterministic package "
                                   f"(inject a seeded random.Random "
                                   f"instead)")
            return
        dotted = _dotted(func)
        if not dotted or len(dotted) < 2:
            return
        root_module = self.modules.get(dotted[0])
        if root_module == "time" and dotted[-1] in _CLOCK_FUNCS:
            self._report(node, f"wall clock: {'.'.join(dotted)}() called "
                               f"in a deterministic package (inject a "
                               f"logical step counter instead)")
        elif root_module == "datetime" and len(dotted) >= 3 and \
                dotted[1] in ("datetime", "date") and \
                dotted[-1] in _DATETIME_FACTORIES:
            self._report(node, f"wall clock: {'.'.join(dotted)}() called "
                               f"in a deterministic package")
        elif dotted[0] in self.datetime_names and \
                dotted[-1] in _DATETIME_FACTORIES:
            self._report(node, f"wall clock: {'.'.join(dotted)}() called "
                               f"in a deterministic package")
        elif root_module == "random" and dotted[-1] not in _SEEDED_RANDOM:
            self._report(node, f"ambient randomness: {'.'.join(dotted)}() "
                               f"called in a deterministic package "
                               f"(inject a seeded random.Random instead)")

    # -- set-iteration checks -----------------------------------------
    def _check_iteration(self, iterable: ast.expr, where: str) -> None:
        if self._is_set_expr(iterable):
            self._report(iterable,
                         f"hash-order leak: {where} iterates a set "
                         f"without sorted(); wrap the iterable in "
                         f"sorted(...) to pin the order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._check_iteration(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_materialization(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            name = "join"
        if name in ("list", "tuple", "join") and node.args:
            self._check_iteration(node.args[0], f"{name}()")


class _WallClockVisitor(ast.NodeVisitor):
    """Confinement pass: direct clock reads outside the audited module."""

    def __init__(self, parsed: ParsedFile, out: List[Diagnostic],
                 audited: List[str]) -> None:
        self.parsed = parsed
        self.out = out
        self.audited = audited
        self.modules: Dict[str, str] = {}
        self.datetime_names: Set[str] = set()

    def _report(self, node: ast.AST, call: str) -> None:
        routes = " or ".join(sorted(self.audited))
        self.out.append(Diagnostic(
            checker="determinism", path=str(self.parsed.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=f"wall clock: {call}() called outside the audited "
                    f"wall-clock module ({routes}); route the read "
                    f"through its wall_clock()"))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = \
                alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date", "time"):
                    self.datetime_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted and len(dotted) >= 2:
            root_module = self.modules.get(dotted[0])
            if root_module == "time" and dotted[-1] in _CLOCK_FUNCS:
                self._report(node, ".".join(dotted))
            elif root_module == "datetime" and len(dotted) >= 3 and \
                    dotted[1] in ("datetime", "date") and \
                    dotted[-1] in _DATETIME_FACTORIES:
                self._report(node, ".".join(dotted))
            elif dotted[0] in self.datetime_names and \
                    dotted[-1] in _DATETIME_FACTORIES:
                self._report(node, ".".join(dotted))
        self.generic_visit(node)


class DeterminismChecker:
    name = "determinism"

    def check_file(self, parsed: ParsedFile,
                   context: AnalysisContext) -> Iterator[Diagnostic]:
        out: List[Diagnostic] = []
        if context.in_deterministic_scope(parsed.module):
            # Deterministic packages forbid clocks outright; running the
            # confinement pass too would double-report every call.
            _DeterminismVisitor(parsed, out).visit(parsed.tree)
        elif context.wall_clock_modules and \
                context.in_wall_clock_confined_scope(parsed.module):
            _WallClockVisitor(parsed, out,
                              context.wall_clock_modules).visit(parsed.tree)
        return iter(out)

    def check_project(self, context: AnalysisContext) \
            -> Iterable[Diagnostic]:
        return ()
