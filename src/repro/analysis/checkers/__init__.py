"""The six contract checkers.

Each checker exposes ``name`` plus ``check_file(parsed, context)`` and
``check_project(context)`` iterators of
:class:`~repro.analysis.core.Diagnostic`.  ``ALL_CHECKERS`` is the
registry the runner and the CLI iterate.
"""

from repro.analysis.checkers.caches import CacheInvalidationChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.faults import FaultCoverageChecker
from repro.analysis.checkers.hatches import EscapeHatchChecker
from repro.analysis.checkers.snapshots import SnapshotImmutabilityChecker
from repro.analysis.checkers.telemetry import TelemetryChecker

#: Checker registry, in reporting-priority order.
ALL_CHECKERS = (
    SnapshotImmutabilityChecker(),
    CacheInvalidationChecker(),
    EscapeHatchChecker(),
    DeterminismChecker(),
    FaultCoverageChecker(),
    TelemetryChecker(),
)

__all__ = [
    "ALL_CHECKERS",
    "CacheInvalidationChecker",
    "DeterminismChecker",
    "EscapeHatchChecker",
    "FaultCoverageChecker",
    "SnapshotImmutabilityChecker",
    "TelemetryChecker",
]
