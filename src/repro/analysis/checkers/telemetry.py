"""Checker 6: telemetry (the observe-only contract).

``observe_only_package("repro.telemetry")`` declares that the telemetry
plane records what the system did but never governs it.  Three rules
make the promise checkable without importing anything:

1. **Import direction.**  A module under an observe-only package may
   import the standard library, its own package, and the tree's
   ``contracts`` module -- nothing else from the same top-level tree.
   Telemetry that imports the optimizer could consult it; telemetry
   that cannot name governed code cannot mutate it.
2. **Fixed histogram bounds.**  Every ``*.histogram(name, bounds)``
   call anywhere in the tree must pass bucket bounds that are literal
   (inline, or a module-level constant assigned a literal in the same
   file).  Data-dependent bucketing would make the metric layout -- and
   hence the deterministic JSON export -- depend on the run.
3. **No governed mutations inside instrumentation.**  At a recording
   call site (``...metrics.<counter>.inc(...)``, ``...observe(...)``,
   ``span(...)`` and friends) the argument expressions may not call a
   declared snapshot mutator/builder or cache revalidator/refresher:
   ``metrics.counter("x").inc(len(self.refresh()))`` would smuggle a
   governed mutation into a line that reads as pure observation, and
   would silently change behaviour when telemetry is stripped.
   Likewise, outside the observe-only package no attribute *reached
   through* a ``metrics``/``telemetry`` attribute may be assigned --
   instrumented components read their registries, they do not reshape
   them.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set

from repro.analysis.core import AnalysisContext, Diagnostic, ParsedFile

__all__ = ["TelemetryChecker"]

#: Method names that record into a metric, span or accounting stream.
_RECORDING_METHODS = frozenset({"inc", "observe", "set", "record", "annotate"})
#: Receiver-chain names marking a telemetry object.
_TELEMETRY_CHAIN = frozenset({"metrics", "_metrics", "telemetry", "_telemetry",
                              "cost_accounting", "span", "trace"})
#: Factory method names whose result is a metric (``m.counter(...)``).
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def _attr_chain(node: ast.expr) -> List[str]:
    """Every attribute/name identifier along a receiver expression."""
    names: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            names.append(node.id)
            return names
        else:
            return names


def _is_number_sequence(value: object) -> bool:
    return isinstance(value, (list, tuple)) and bool(value) and all(
        isinstance(item, (int, float)) and not isinstance(item, bool)
        for item in value)


class _ModuleConstants(ast.NodeVisitor):
    """Names assigned a literal number-sequence at module level."""

    def __init__(self) -> None:
        self.literal_bound_names: Set[str] = set()

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            try:
                literal = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                continue
            if _is_number_sequence(literal):
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.literal_bound_names.add(target.id)


class _TelemetryVisitor(ast.NodeVisitor):
    def __init__(self, parsed: ParsedFile, context: AnalysisContext,
                 out: List[Diagnostic]) -> None:
        self.parsed = parsed
        self.context = context
        self.out = out
        self.observe_scope = context.observe_only_scope(parsed.module)
        constants = _ModuleConstants()
        constants.visit(parsed.tree)
        self.literal_bound_names = constants.literal_bound_names
        #: Names of declared governed mutators: snapshot mutators and
        #: builders plus cache revalidators/refreshers.  Matching is by
        #: terminal name -- conservative, but these names are chosen to
        #: be distinctive (``_revalidate_plan_cache``, ``refresh``, ...).
        governed: Set[str] = set()
        for decl in context.snapshots.values():
            governed.update(decl.mutators)
            governed.update(decl.builders)
        for cache in context.caches:
            for policy in cache.memos.values():
                for key in ("revalidators", "refreshers"):
                    names = policy.get(key, ())
                    if isinstance(names, (list, tuple)):
                        governed.update(str(name) for name in names)
        self.governed_mutators = governed

    def _report(self, node: ast.AST, message: str) -> None:
        self.out.append(Diagnostic(
            checker="telemetry", path=str(self.parsed.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), message=message))

    # -- rule 1: import direction inside observe-only packages ---------
    def _check_import_target(self, node: ast.AST, target: str) -> None:
        assert self.observe_scope is not None
        top = self.observe_scope.split(".")[0]
        if target != top and not target.startswith(top + "."):
            return  # stdlib / third-party: out of scope
        if target == self.observe_scope or \
                target.startswith(self.observe_scope + "."):
            return  # package-internal
        if target == f"{top}.contracts":
            return  # the declarations themselves are observe-safe
        self._report(node, f"observe-only package {self.observe_scope} "
                           f"imports governed module {target}; telemetry "
                           f"may import only itself and {top}.contracts")

    def visit_Import(self, node: ast.Import) -> None:
        if self.observe_scope is not None:
            for alias in node.names:
                self._check_import_target(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.observe_scope is not None and node.level == 0 and \
                node.module is not None:
            top = self.observe_scope.split(".")[0]
            if node.module == top:
                # ``from repro import contracts`` is the allowed form;
                # anything else pulled off the root package is governed.
                for alias in node.names:
                    self._check_import_target(
                        node, f"{node.module}.{alias.name}")
            else:
                self._check_import_target(node, node.module)
        self.generic_visit(node)

    # -- rule 2: fixed histogram bounds --------------------------------
    def _check_histogram(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "histogram"):
            return
        bounds: Optional[ast.expr] = None
        if len(node.args) >= 2:
            bounds = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "bounds":
                    bounds = keyword.value
        if bounds is None:
            return  # registry raises at runtime; not a contract matter
        if isinstance(bounds, ast.Name):
            if bounds.id in self.literal_bound_names:
                return
        else:
            try:
                literal = ast.literal_eval(bounds)
            except (ValueError, SyntaxError):
                literal = None
            if _is_number_sequence(literal):
                return
        self._report(node, "histogram bucket bounds must be a literal "
                           "number sequence (inline or a module-level "
                           "constant); data-dependent bucketing breaks "
                           "deterministic exports")

    # -- rule 3: no governed mutations inside instrumentation ----------
    def _is_recording_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "span"
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in _RECORDING_METHODS:
            return False
        chain = _attr_chain(func.value)
        # ``self._m_foo.inc()`` is the migrated-counter idiom: any
        # ``_m_``-prefixed attribute in the receiver marks a metric.
        return bool(_TELEMETRY_CHAIN.intersection(chain)) or \
            bool(_METRIC_FACTORIES.intersection(chain)) or \
            any(name.startswith("_m_") for name in chain)

    def _check_recording_args(self, node: ast.Call) -> None:
        if not self._is_recording_call(node):
            return
        arg_nodes = list(node.args) + [kw.value for kw in node.keywords]
        for arg in arg_nodes:
            for sub in ast.walk(arg):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None)
                if name in self.governed_mutators:
                    self._report(sub, f"governed mutator {name}() called "
                                      f"inside a telemetry recording "
                                      f"argument; instrumentation must "
                                      f"observe, never mutate")

    def visit_Call(self, node: ast.Call) -> None:
        self._check_histogram(node)
        self._check_recording_args(node)
        self.generic_visit(node)

    # -- rule 3b: no writes reached through a telemetry attribute ------
    def _check_write_target(self, target: ast.expr, node: ast.AST) -> None:
        if self.observe_scope is not None:
            return  # the plane may manage its own internals
        if not isinstance(target, ast.Attribute):
            return
        # Only *pass-through* writes are governed: the chain below the
        # assigned attribute containing a telemetry name means someone
        # is reshaping a registry/span from outside the plane.  Plain
        # ``self.metrics = ...`` (chain head) is component wiring.
        chain = _attr_chain(target.value)
        if _TELEMETRY_CHAIN.intersection(chain):
            self._report(node, "attribute assignment through a telemetry "
                               "object outside the observe-only package; "
                               "record through inc()/observe()/set() "
                               "instead of reshaping telemetry state")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target, node)
        self.generic_visit(node)


class TelemetryChecker:
    name = "telemetry"

    def check_file(self, parsed: ParsedFile,
                   context: AnalysisContext) -> Iterator[Diagnostic]:
        if not context.observe_only_packages:
            return iter(())
        out: List[Diagnostic] = []
        _TelemetryVisitor(parsed, context, out).visit(parsed.tree)
        return iter(out)

    def check_project(self, context: AnalysisContext) \
            -> Iterable[Diagnostic]:
        return ()
