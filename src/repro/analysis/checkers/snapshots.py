"""Checker 1: snapshot-immutability.

A class registered with ``@snapshot_contract`` may only be written
inside its ``__init__`` and its registered builders.  "Written" covers:

* attribute assignment / augmented assignment / deletion
  (``snap.attr = v``, ``snap.attr += v``, ``del snap.attr``);
* subscript stores through an attribute (``snap.attr[k] = v``);
* mutating container method calls on an attribute
  (``snap.attr.append(v)``, ``.update``, ``.setdefault``, ...);
* calls of registered *mutator* methods on a snapshot instance
  (``stats.merge(other)``) outside a build phase.

Snapshot instances are recognized by local type inference: ``self``
inside a registered class body, names bound by ``Name = SnapshotClass
(...)`` constructor calls, and names whose parameter/variable
annotation mentions exactly one registered class.  Aliasing a snapshot
container out to a local first (``items = snap.items; items.append``)
defeats the checker -- the runtime freeze mode and code review cover
that hole (documented in CONTRACTS.md).

Declared ``memo_attrs`` are exempt everywhere: they are content-keyed
caches whose population does not change the snapshot's value.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.core import AnalysisContext, Diagnostic, ParsedFile

__all__ = ["SnapshotImmutabilityChecker", "MUTATING_METHODS"]

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "sort", "reverse",
})


def _annotation_snapshot(node: Optional[ast.expr],
                         context: AnalysisContext) -> Optional[str]:
    """The single registered class an annotation mentions, if any."""
    if node is None:
        return None
    names = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.add(sub.value)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    matches = [name for name in names if name in context.snapshots]
    if len(matches) == 1:
        return matches[0]
    return None


class _Scope:
    """One function scope: inferred name -> snapshot class bindings."""

    def __init__(self, node: Optional[ast.AST], method_name: Optional[str],
                 class_name: Optional[str]) -> None:
        self.node = node
        #: The method name this scope reports as, for builder checks.
        self.method_name = method_name
        #: The registered class this scope is a direct method of.
        self.class_name = class_name
        self.bindings: Dict[str, str] = {}


class _SnapshotVisitor(ast.NodeVisitor):
    def __init__(self, parsed: ParsedFile, context: AnalysisContext,
                 out: List[Diagnostic]) -> None:
        self.parsed = parsed
        self.context = context
        self.out = out
        self.class_stack: List[str] = []
        self.scopes: List[_Scope] = [_Scope(None, None, None)]
        self.qual_stack: List[str] = []

    # -- scope / inference helpers ------------------------------------
    def _current_class(self) -> Optional[str]:
        return self.class_stack[-1] if self.class_stack else None

    def _bind(self, name: str, class_name: Optional[str]) -> None:
        if class_name and class_name in self.context.snapshots:
            self.scopes[-1].bindings[name] = class_name

    def _lookup(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope.bindings:
                return scope.bindings[name]
        return None

    def _snapshot_of(self, node: ast.expr) -> Optional[str]:
        """The registered snapshot class ``node`` evaluates to, if
        inferable."""
        if isinstance(node, ast.Name):
            if node.id == "self":
                current = self._current_class()
                if current in self.context.snapshots:
                    return current
                return None
            return self._lookup(node.id)
        return None

    def _in_builder(self) -> bool:
        """True when any enclosing function is a registered builder."""
        for scope in self.scopes[1:]:
            if scope.method_name is None:
                continue
            if scope.class_name is not None:
                decl = self.context.snapshots.get(scope.class_name)
                if decl and scope.method_name in \
                        ("__init__",) + decl.builders:
                    return True
            qualname = scope.qualname  # type: ignore[attr-defined]
            if (self.parsed.module, qualname) in \
                    self.context.builder_functions:
                return True
        return False

    def _report(self, node: ast.AST, message: str) -> None:
        self.out.append(Diagnostic(
            checker="snapshot-immutability",
            path=str(self.parsed.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message))

    # -- mutation checks ----------------------------------------------
    def _check_attribute_write(self, target: ast.Attribute,
                               verb: str) -> None:
        owner = self._snapshot_of(target.value)
        if owner is None:
            return
        decl = self.context.snapshots[owner]
        if target.attr in decl.memo_attrs:
            return
        if self._in_builder():
            return
        self._report(target, f"snapshot {owner}.{target.attr} {verb} "
                             f"outside a registered builder "
                             f"(builders: __init__"
                             f"{', ' + ', '.join(decl.builders) if decl.builders else ''})")

    def _check_target(self, target: ast.expr, verb: str) -> None:
        if isinstance(target, ast.Attribute):
            self._check_attribute_write(target, verb)
        elif isinstance(target, ast.Subscript) and \
                isinstance(target.value, ast.Attribute):
            self._check_attribute_write(target.value,
                                        f"{verb} (subscript store)")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, verb)

    # -- visitors ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.qual_stack.append(node.name)
        self.generic_visit(node)
        self.qual_stack.pop()
        self.class_stack.pop()

    def _visit_function(self, node: ast.AST) -> None:
        name = node.name  # type: ignore[attr-defined]
        direct_method = (len(self.qual_stack) > 0
                         and self.qual_stack[-1] == self._current_class()
                         and self._current_class() is not None)
        scope = _Scope(node, name,
                       self._current_class() if direct_method else None)
        scope.qualname = ".".join(self.qual_stack + [name])  # type: ignore[attr-defined]
        # Parameter annotations seed the inference table.
        args = node.args  # type: ignore[attr-defined]
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            inferred = _annotation_snapshot(arg.annotation, self.context)
            if inferred:
                scope.bindings[arg.arg] = inferred
        self.scopes.append(scope)
        self.qual_stack.append(name)
        # Nested classes inside functions would confuse class_stack;
        # the governed tree has none, so plain recursion is fine.
        self.generic_visit(node)
        self.qual_stack.pop()
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        # Inference: name = SnapshotClass(...)
        if isinstance(node.value, ast.Call):
            callee = node.value.func
            callee_name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else None)
            if callee_name in self.context.snapshots:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._bind(target.id, callee_name)
        for target in node.targets:
            self._check_target(target, "assigned")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._bind(node.target.id,
                       _annotation_snapshot(node.annotation, self.context))
        self._check_target(node.target, "assigned")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, "augmented-assigned")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, "deleted")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # snap.attr.append(...) -- container mutation through an
            # attribute of a snapshot instance.
            if func.attr in MUTATING_METHODS and \
                    isinstance(func.value, ast.Attribute):
                self._check_attribute_write(
                    func.value, f"mutated via .{func.attr}()")
            else:
                # stats.merge(...) -- registered mutator method call.
                owner = self._snapshot_of(func.value)
                if owner is not None:
                    decl = self.context.snapshots[owner]
                    if func.attr in decl.mutators and not self._in_builder():
                        self._report(
                            node,
                            f"snapshot mutator {owner}.{func.attr}() called "
                            f"outside a registered builder")
        self.generic_visit(node)


class SnapshotImmutabilityChecker:
    name = "snapshot-immutability"

    def check_file(self, parsed: ParsedFile,
                   context: AnalysisContext) -> Iterator[Diagnostic]:
        if not context.snapshots:
            return iter(())
        out: List[Diagnostic] = []
        _SnapshotVisitor(parsed, context, out).visit(parsed.tree)
        return iter(out)

    def check_project(self, context: AnalysisContext) \
            -> Iterable[Diagnostic]:
        return ()
