"""Checker 2: cache-invalidation.

Every memo attribute declared through ``@cache_contract`` follows one
of four invalidation disciplines (see
:func:`repro.contracts.cache_contract`):

``revalidate``
    The memo is valid only behind a signature/version comparison.  The
    *validated set* V is: the declared revalidator methods, any method
    that directly calls one (``self.refresh()`` before reading), and
    ``__init__``.  A diagnostic fires when the memo is touched in a
    method reachable from a public non-V method through intra-class
    ``self.x()`` calls without passing through V -- that is a read path
    on which nothing checked the data signature.
``push``
    Change notifications keep the memo fresh; only the declared
    readers, refreshers and ``__init__`` may touch it.
``object-keyed`` / ``static``
    No read-side constraints (validity is tied to the owning object's
    identity, or the memo is data-independent).

The analysis is per-class and purely intra-procedural over the class's
own method bodies: calls through other objects are invisible, which is
exactly the isolation the contract wants -- a memo whose freshness
depends on a *caller's* discipline is the bug class this checker
exists to reject.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.core import AnalysisContext, CacheDecl, Diagnostic, ParsedFile

__all__ = ["CacheInvalidationChecker"]


def _method_nodes(class_node: ast.ClassDef) -> Dict[str, ast.AST]:
    methods: Dict[str, ast.AST] = {}
    for stmt in class_node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = stmt
    return methods


def _self_attribute_touches(method: ast.AST) -> Dict[str, int]:
    """attr -> first line where ``self.<attr>`` appears (any context)."""
    touches: Dict[str, int] = {}
    for node in ast.walk(method):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and node.value.id == "self":
            touches.setdefault(node.attr, node.lineno)
    return touches


def _self_calls(method: ast.AST) -> Set[str]:
    """Names of methods invoked as ``self.<name>(...)`` in the body."""
    calls: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == "self":
            calls.add(node.func.attr)
    return calls


def _find_class(parsed: ParsedFile, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(parsed.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _as_tuple(value: object) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)):
        return tuple(str(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(str(item) for item in value))
    return ()


class CacheInvalidationChecker:
    name = "cache-invalidation"

    def check_file(self, parsed: ParsedFile,
                   context: AnalysisContext) -> Iterator[Diagnostic]:
        out: List[Diagnostic] = []
        for decl in context.caches:
            if decl.path != str(parsed.path):
                continue
            class_node = _find_class(parsed, decl.class_name)
            if class_node is None:
                continue
            out.extend(self._check_class(parsed, decl, class_node))
        return iter(out)

    def check_project(self, context: AnalysisContext) \
            -> Iterable[Diagnostic]:
        return ()

    # -----------------------------------------------------------------
    def _check_class(self, parsed: ParsedFile, decl: CacheDecl,
                     class_node: ast.ClassDef) -> Iterator[Diagnostic]:
        methods = _method_nodes(class_node)
        touches = {name: _self_attribute_touches(node)
                   for name, node in methods.items()}
        calls = {name: _self_calls(node) for name, node in methods.items()}

        for attr, policy in decl.memos.items():
            kind = str(policy.get("policy", "revalidate"))
            if kind in ("object-keyed", "static"):
                continue
            if kind == "push":
                yield from self._check_push(parsed, decl, attr, policy,
                                            touches)
            else:
                yield from self._check_revalidate(parsed, decl, attr,
                                                  policy, methods, touches,
                                                  calls)

    def _check_push(self, parsed: ParsedFile, decl: CacheDecl, attr: str,
                    policy: Mapping[str, object],
                    touches: Dict[str, Dict[str, int]]) \
            -> Iterator[Diagnostic]:
        allowed = set(_as_tuple(policy.get("readers", ())))
        allowed.update(_as_tuple(policy.get("refreshers", ())))
        allowed.add("__init__")
        for method, seen in touches.items():
            if method in allowed or attr not in seen:
                continue
            yield Diagnostic(
                checker=self.name, path=str(parsed.path), line=seen[attr],
                col=0,
                message=(f"push-invalidated memo {decl.class_name}.{attr} "
                         f"touched in {method}(); allowed accessors: "
                         f"{', '.join(sorted(allowed))}"))

    def _check_revalidate(self, parsed: ParsedFile, decl: CacheDecl,
                          attr: str, policy: Mapping[str, object],
                          methods: Dict[str, ast.AST],
                          touches: Dict[str, Dict[str, int]],
                          calls: Dict[str, Set[str]]) \
            -> Iterator[Diagnostic]:
        revalidators = set(_as_tuple(policy.get("revalidators", ())))
        validated = set(revalidators)
        validated.add("__init__")
        for method, callees in calls.items():
            if callees & revalidators:
                validated.add(method)

        # Entry points: public methods (and dunders other than
        # __init__) outside the validated set.
        entries = [name for name in methods
                   if name not in validated
                   and (not name.startswith("_") or
                        (name.startswith("__") and name.endswith("__")
                         and name != "__init__"))]

        reported: Set[Tuple[str, str]] = set()
        for entry in entries:
            # BFS over self-calls; never traverse *into* the validated
            # set (reads below a revalidation point are safe).
            queue = deque([entry])
            visited = {entry}
            via: Dict[str, str] = {entry: entry}
            while queue:
                current = queue.popleft()
                seen = touches.get(current, {})
                if attr in seen and (current, attr) not in reported:
                    reported.add((current, attr))
                    yield Diagnostic(
                        checker=self.name, path=str(parsed.path),
                        line=seen[attr], col=0,
                        message=(f"memo {decl.class_name}.{attr} touched in "
                                 f"{current}() on a path from public "
                                 f"{via[current]}() that never revalidates "
                                 f"(revalidators: "
                                 f"{', '.join(sorted(revalidators)) or '-'})"))
                for callee in calls.get(current, ()):
                    if callee in validated or callee in visited or \
                            callee not in methods:
                        continue
                    visited.add(callee)
                    via[callee] = via[current]
                    queue.append(callee)
