"""Checker 3: escape-hatch parity.

Every flag declared with ``escape_hatch("use_*")`` is a compatibility
switch whose whole value is that *both* settings keep working.  The
checker therefore requires, across the analyzed tree:

* the flag appears in at least one conditional test (``if`` /
  ``while`` / conditional expression) -- a flag nothing branches on is
  dead configuration;
* at least one of those branches guards live code (an ``if flag:
  pass`` skeleton means one of the two paths has rotted away);
* the flag name is referenced somewhere under ``tests/`` -- an
  untested escape hatch is parity on faith.

Diagnostics anchor to the ``escape_hatch(...)`` declaration line, so a
failure points at the contract rather than at one arbitrary use site.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Tuple

from repro.analysis.core import AnalysisContext, Diagnostic, ParsedFile

__all__ = ["EscapeHatchChecker"]


def _references_flag(node: ast.expr, flag: str) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == flag:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == flag:
            return True
    return False


def _body_is_live(body: List[ast.stmt]) -> bool:
    return any(not isinstance(stmt, ast.Pass) for stmt in body)


def _conditional_sites(parsed: ParsedFile, flag: str) \
        -> Iterator[Tuple[int, bool]]:
    """(line, guards_live_code) for every conditional testing ``flag``."""
    for node in ast.walk(parsed.tree):
        if isinstance(node, (ast.If, ast.While)) and \
                _references_flag(node.test, flag):
            yield node.lineno, _body_is_live(node.body)
        elif isinstance(node, ast.IfExp) and \
                _references_flag(node.test, flag):
            # A conditional expression always yields one of two live
            # values.
            yield node.lineno, True
        elif isinstance(node, ast.Assert) and \
                _references_flag(node.test, flag):
            yield node.lineno, True


class EscapeHatchChecker:
    name = "escape-hatch"

    def check_file(self, parsed: ParsedFile,
                   context: AnalysisContext) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, context: AnalysisContext) \
            -> Iterator[Diagnostic]:
        if not context.hatches:
            return
        test_corpus = self._test_corpus(context)
        for hatch in context.hatches:
            sites: List[Tuple[int, bool]] = []
            for parsed in context.files:
                sites.extend(_conditional_sites(parsed, hatch.name))
            if not sites:
                yield Diagnostic(
                    checker=self.name, path=hatch.path, line=hatch.line,
                    col=0,
                    message=(f"escape hatch {hatch.name!r} is never "
                             f"branched on anywhere in the analyzed tree"))
            elif not any(live for _, live in sites):
                yield Diagnostic(
                    checker=self.name, path=hatch.path, line=hatch.line,
                    col=0,
                    message=(f"escape hatch {hatch.name!r} only guards "
                             f"dead code (every conditional body is "
                             f"'pass')"))
            pattern = re.compile(r"\b%s\b" % re.escape(hatch.name))
            if not any(pattern.search(text) for text in test_corpus):
                yield Diagnostic(
                    checker=self.name, path=hatch.path, line=hatch.line,
                    col=0,
                    message=(f"escape hatch {hatch.name!r} is not "
                             f"referenced by any test under "
                             f"{context.tests_dir or 'tests/'}"))

    @staticmethod
    def _test_corpus(context: AnalysisContext) -> List[str]:
        tests_dir = context.tests_dir
        if tests_dir is None or not tests_dir.is_dir():
            return []
        corpus: List[str] = []
        for path in sorted(tests_dir.rglob("*.py")):
            try:
                corpus.append(path.read_text(encoding="utf-8"))
            except OSError:
                continue
        return corpus
