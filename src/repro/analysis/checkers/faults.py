"""Checker 5: fault-injection coverage.

The fault harness (:mod:`repro.faults`) only contains failures at seams
that actually consult it, so the checker enforces, across the analyzed
tree:

* every literal ``fault_point("...")`` / ``guarded_fault_point("...")``
  argument names a site registered with ``injection_site(...)`` -- a
  typo'd site silently never fires;
* every registered site is consulted by at least one literal
  fault-point call -- a declared-but-unwired site is coverage on
  paper only;
* every function that mutates the catalog's index set (calls
  ``.add_index`` / ``.drop_index``) contains a fault-point call, so no
  catalog mutation seam escapes the harness.  Intentionally uncovered
  mutations (rollback undo paths, post-commit installs) carry a
  ``# contract: allow[fault-coverage]`` suppression explaining why.

Diagnostics for the unconsulted-site rule anchor to the
``injection_site(...)`` declaration; the other two anchor to the
offending call.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Set

from repro.analysis.core import (
    AnalysisContext,
    Diagnostic,
    ParsedFile,
    call_name,
)

__all__ = ["FaultCoverageChecker"]

#: Catalog index-set mutators whose enclosing function must be covered.
MUTATORS = frozenset({"add_index", "drop_index"})

#: Callee names that consult the fault harness.
FAULT_POINTS = frozenset({"fault_point", "guarded_fault_point"})


def _literal_site(node: ast.Call) -> str | None:
    """The literal site string of a fault-point call, else ``None``."""
    if not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _fault_point_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and call_name(node) in FAULT_POINTS:
            yield node


class FaultCoverageChecker:
    name = "fault-coverage"

    def check_file(self, parsed: ParsedFile,
                   context: AnalysisContext) -> Iterable[Diagnostic]:
        # The harness's own module declares the sites and defines the
        # consult functions; its internal calls are not seams.
        if parsed.module == "repro.faults":
            return
        for call in _fault_point_calls(parsed.tree):
            site = _literal_site(call)
            if site is not None and site not in context.sites:
                yield Diagnostic(
                    checker=self.name, path=str(parsed.path),
                    line=call.lineno, col=call.col_offset,
                    message=(f"fault point consults unregistered site "
                             f"{site!r}; declare it with "
                             f"injection_site({site!r})"))
        for node in ast.walk(parsed.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            covered = any(True for _ in _fault_point_calls(node))
            if covered:
                continue
            for call in ast.walk(node):
                if isinstance(call, ast.Call) \
                        and call_name(call) in MUTATORS:
                    yield Diagnostic(
                        checker=self.name, path=str(parsed.path),
                        line=call.lineno, col=call.col_offset,
                        message=(f"{node.name!r} mutates the catalog "
                                 f"index set without consulting a fault "
                                 f"injection point; wire a "
                                 f"guarded_fault_point(...) or suppress "
                                 f"with a reason"))

    def check_project(self, context: AnalysisContext) \
            -> Iterator[Diagnostic]:
        if not context.sites:
            return
        consulted: Set[str] = set()
        for parsed in context.files:
            if parsed.module == "repro.faults":
                continue
            for call in _fault_point_calls(parsed.tree):
                site = _literal_site(call)
                if site is not None:
                    consulted.add(site)
        for name in sorted(context.sites):
            if name not in consulted:
                decl = context.sites[name]
                yield Diagnostic(
                    checker=self.name, path=decl.path, line=decl.line,
                    col=0,
                    message=(f"injection site {name!r} is declared but "
                             f"never consulted by any fault point in "
                             f"the analyzed tree"))
