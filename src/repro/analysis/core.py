"""Shared model for the contract analyzer.

Three things live here:

* :class:`Diagnostic` and :class:`ParsedFile` -- the units the runner
  and reporters exchange, including ``# contract: allow[checker]``
  line suppressions.
* Static extraction of contract declarations: a pre-pass over every
  analyzed file that recognizes the :mod:`repro.contracts` declaration
  forms *syntactically* (decorator and call shapes with literal
  arguments).  Analyzed code is never imported, so violation fixtures
  are self-describing and linting cannot execute the tree under test.
* :class:`AnalysisContext` -- the extracted declarations plus the
  parsed files, handed to every checker.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

__all__ = [
    "Diagnostic",
    "ParsedFile",
    "SnapshotDecl",
    "CacheDecl",
    "HatchDecl",
    "SiteDecl",
    "AnalysisContext",
    "parse_file",
    "module_name_for",
    "extract_registrations",
    "decorator_name",
    "call_name",
]

#: ``# contract: allow[snapshot-immutability]`` (comma-separated names
#: or ``*``) suppresses diagnostics reported on the same line.
_ALLOW_RE = re.compile(r"#\s*contract:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class Diagnostic:
    """One checker finding, anchored to a source location."""

    checker: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"[{self.checker}] {self.message}")


@dataclass
class ParsedFile:
    """A source file parsed once and shared by every checker."""

    path: Path
    module: str
    tree: ast.Module
    source: str
    #: line number -> set of checker names allowed on that line
    #: (``{"*"}`` allows every checker).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        allowed = self.suppressions.get(diagnostic.line)
        if not allowed:
            return False
        return "*" in allowed or diagnostic.checker in allowed


@dataclass(frozen=True)
class SnapshotDecl:
    """A ``@snapshot_contract`` declaration found in the tree."""

    name: str
    module: str
    path: str
    line: int
    builders: Tuple[str, ...] = ()
    mutators: Tuple[str, ...] = ()
    memo_attrs: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class CacheDecl:
    """A ``@cache_contract`` declaration found in the tree."""

    class_name: str
    module: str
    path: str
    line: int
    #: attr -> policy mapping ({"policy": ..., "revalidators": ...}).
    memos: Mapping[str, Mapping[str, object]] = field(default_factory=dict)


@dataclass(frozen=True)
class HatchDecl:
    """An ``escape_hatch("use_*")`` declaration found in the tree."""

    name: str
    module: str
    path: str
    line: int


@dataclass(frozen=True)
class SiteDecl:
    """An ``injection_site("...")`` declaration found in the tree."""

    name: str
    module: str
    path: str
    line: int


@dataclass
class AnalysisContext:
    """Everything the checkers need: declarations plus parsed files."""

    files: List[ParsedFile] = field(default_factory=list)
    #: snapshot class name -> declaration (class names are unique in
    #: the governed tree; the checkers match on the simple name so
    #: annotations like ``statistics: DatabaseStatistics`` resolve).
    snapshots: Dict[str, SnapshotDecl] = field(default_factory=dict)
    #: ``(module, qualname)`` of every ``@builder`` function.
    builder_functions: Set[Tuple[str, str]] = field(default_factory=set)
    caches: List[CacheDecl] = field(default_factory=list)
    hatches: List[HatchDecl] = field(default_factory=list)
    #: fault-injection site name -> declaration.
    sites: Dict[str, SiteDecl] = field(default_factory=dict)
    deterministic_packages: List[str] = field(default_factory=list)
    #: ``observe_only_package("...")`` declarations (non-governing
    #: telemetry scopes, checked by the telemetry checker).
    observe_only_packages: List[str] = field(default_factory=list)
    #: ``wall_clock_module("...")`` declarations: the only modules in
    #: their top-level trees allowed to read ``time.*`` clocks.
    wall_clock_modules: List[str] = field(default_factory=list)
    tests_dir: Optional[Path] = None
    #: Filled in by the runner: final, sorted, suppression-filtered.
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def in_deterministic_scope(self, module: str) -> bool:
        return any(module == pkg or module.startswith(pkg + ".")
                   for pkg in self.deterministic_packages)

    def observe_only_scope(self, module: str) -> Optional[str]:
        """The observe-only package containing ``module``, if any."""
        for pkg in self.observe_only_packages:
            if module == pkg or module.startswith(pkg + "."):
                return pkg
        return None

    def in_wall_clock_confined_scope(self, module: str) -> bool:
        """True when ``module`` shares a top-level package with a
        declared wall-clock module but is not itself one of them."""
        if module in self.wall_clock_modules:
            return False
        tops = {decl.split(".")[0] for decl in self.wall_clock_modules}
        return module.split(".")[0] in tops


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists.

    ``src/repro/tuning/monitor.py`` -> ``repro.tuning.monitor``; a
    free-standing fixture file maps to its stem.
    """
    path = path.resolve()
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


def parse_file(path: Path) -> ParsedFile:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            names = {part.strip() for part in match.group(1).split(",")
                     if part.strip()}
            if names:
                suppressions[lineno] = names
    return ParsedFile(path=path, module=module_name_for(path), tree=tree,
                      source=source, suppressions=suppressions)


def decorator_name(node: ast.expr) -> Optional[str]:
    """The terminal name of a decorator expression (``contracts.builder``
    and ``builder`` both yield ``"builder"``); ``None`` for exotic
    shapes."""
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The terminal name of a call's callee."""
    return decorator_name(node)


def _literal(node: Optional[ast.expr], default: object) -> object:
    if node is None:
        return default
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return default


def _str_tuple(node: Optional[ast.expr]) -> Tuple[str, ...]:
    value = _literal(node, ())
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(str(item) for item in sorted(value)) \
            if isinstance(value, (set, frozenset)) \
            else tuple(str(item) for item in value)
    return ()


class _RegistrationCollector(ast.NodeVisitor):
    """Pre-pass: pull contract declarations out of one parsed file."""

    def __init__(self, parsed: ParsedFile, context: AnalysisContext) -> None:
        self.parsed = parsed
        self.context = context
        self._qualname: List[str] = []

    # -- helpers -------------------------------------------------------
    def _keyword(self, call: ast.Call, name: str) -> Optional[ast.expr]:
        for keyword in call.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def _record_class(self, node: ast.ClassDef) -> None:
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            name = decorator_name(deco)
            if name == "snapshot_contract":
                self.context.snapshots[node.name] = SnapshotDecl(
                    name=node.name,
                    module=self.parsed.module,
                    path=str(self.parsed.path),
                    line=node.lineno,
                    builders=_str_tuple(self._keyword(deco, "builders")),
                    mutators=_str_tuple(self._keyword(deco, "mutators")),
                    memo_attrs=frozenset(
                        _str_tuple(self._keyword(deco, "memo_attrs"))))
            elif name == "cache_contract":
                memos = _literal(self._keyword(deco, "memos"), {})
                if isinstance(memos, dict):
                    self.context.caches.append(CacheDecl(
                        class_name=node.name,
                        module=self.parsed.module,
                        path=str(self.parsed.path),
                        line=node.lineno,
                        memos=memos))

    def _record_function(self, node: ast.AST) -> None:
        for deco in node.decorator_list:  # type: ignore[attr-defined]
            if isinstance(deco, ast.Call):
                continue
            if decorator_name(deco) == "builder":
                qualname = ".".join(
                    self._qualname + [node.name])  # type: ignore[attr-defined]
                self.context.builder_functions.add(
                    (self.parsed.module, qualname))

    # -- visitors ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._record_class(node)
        self._qualname.append(node.name)
        self.generic_visit(node)
        self._qualname.pop()

    def _visit_function(self, node: ast.AST) -> None:
        self._record_function(node)
        self._qualname.append(node.name)  # type: ignore[attr-defined]
        self.generic_visit(node)
        self._qualname.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name in ("escape_hatch", "deterministic_package",
                    "injection_site", "observe_only_package",
                    "wall_clock_module") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if name == "escape_hatch":
                    self.context.hatches.append(HatchDecl(
                        name=first.value,
                        module=self.parsed.module,
                        path=str(self.parsed.path),
                        line=node.lineno))
                elif name == "injection_site":
                    self.context.sites.setdefault(first.value, SiteDecl(
                        name=first.value,
                        module=self.parsed.module,
                        path=str(self.parsed.path),
                        line=node.lineno))
                elif name == "observe_only_package":
                    if first.value not in self.context.observe_only_packages:
                        self.context.observe_only_packages.append(first.value)
                elif name == "wall_clock_module":
                    if first.value not in self.context.wall_clock_modules:
                        self.context.wall_clock_modules.append(first.value)
                elif first.value not in self.context.deterministic_packages:
                    self.context.deterministic_packages.append(first.value)
        self.generic_visit(node)


def extract_registrations(parsed: ParsedFile,
                          context: AnalysisContext) -> None:
    """Fold one file's contract declarations into ``context``."""
    _RegistrationCollector(parsed, context).visit(parsed.tree)
