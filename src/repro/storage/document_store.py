"""Document store: named collections of XML documents.

An :class:`XmlCollection` is the analogue of a DB2 table with an XML
column: a bag of documents plus the statistics gathered over them.  An
:class:`XmlDatabase` groups collections and owns the system
:class:`~repro.storage.catalog.Catalog`; it is the object the optimizer,
the advisor, and the executor are handed.

Data change is propagated as a *delta* by default
(``use_incremental_maintenance=True``): every document add/remove
captures the document's per-path node groups once
(:func:`~repro.storage.maintenance.compute_document_delta`), folds them
into the cached path summary and statistics accumulator in O(document
nodes) instead of dropping them for an O(collection nodes) rebuild, and
journals the delta so detached consumers (the executor's materialized
indexes) can catch up.  ``use_incremental_maintenance=False`` restores
the legacy drop-everything behaviour for equivalence testing.
"""

from __future__ import annotations

import weakref
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.contracts import builder, cache_contract, escape_hatch
from repro.faults import guarded_fault_point
from repro.storage.catalog import Catalog
from repro.storage.maintenance import (
    ADD,
    DELTA_LOG_CAPACITY,
    REMOVE,
    CollectionDelta,
    DeltaLog,
    compute_document_delta,
)
from repro.storage.columnar import ColumnarStore, build_columnar_store
from repro.storage.path_summary import PathSummary, build_path_summary
from repro.storage.statistics import (
    DatabaseStatistics,
    StatisticsAccumulator,
    collect_statistics_from_summary,
)
from repro.xmldb.nodes import DocumentNode
from repro.xmldb.parser import parse_document


class StorageError(Exception):
    """Raised on invalid document-store operations."""


#: Delta-based maintenance of derived state; ``False`` restores the
#: legacy drop-and-rebuild behaviour for equivalence testing.
escape_hatch("use_incremental_maintenance")


@cache_contract(memos={
    "_summary": {"policy": "push", "readers": ("path_summary",),
                 "refreshers": ("_apply_delta", "_invalidate_derived")},
    "_statistics": {"policy": "push", "readers": ("statistics",),
                    "refreshers": ("_apply_delta", "_invalidate_derived")},
    "_accumulator": {"policy": "push", "readers": ("statistics",),
                     "refreshers": ("_apply_delta", "_invalidate_derived")},
    "_columnar": {"policy": "push", "readers": ("columnar_store",),
                  "refreshers": ("_apply_delta", "_invalidate_derived")},
})
class XmlCollection:
    """A named collection of XML documents (a table with an XML column)."""

    def __init__(self, name: str,
                 use_incremental_maintenance: bool = True,
                 delta_log_capacity: int = DELTA_LOG_CAPACITY) -> None:
        if delta_log_capacity < 1:
            raise ValueError(
                f"delta_log_capacity must be positive, got {delta_log_capacity}")
        self.name = name
        #: Maintain the path summary and statistics through per-document
        #: deltas (and journal them for downstream consumers) instead of
        #: dropping and rebuilding them on every add/remove.
        self.use_incremental_maintenance = use_incremental_maintenance
        #: How many deltas the journal retains before consumers further
        #: behind must rebuild (see :class:`~repro.storage.maintenance.DeltaLog`).
        self.delta_log_capacity = delta_log_capacity
        self._documents: List[DocumentNode] = []
        self._statistics: Optional[DatabaseStatistics] = None
        self._summary: Optional[PathSummary] = None
        self._accumulator: Optional[StatisticsAccumulator] = None
        self._columnar: Optional[ColumnarStore] = None
        self._delta_log = DeltaLog(capacity=delta_log_capacity)
        self._change_listeners: List[Callable[["XmlCollection"], None]] = []
        #: Monotonic data version, bumped on every document add/remove so
        #: consumers holding derived state (the executor's document
        #: lookup, merged database statistics) can detect staleness.
        self._version = 0

    # ------------------------------------------------------------------
    def add_document(self, document: Union[DocumentNode, str, bytes],
                     uri: str = "") -> DocumentNode:
        """Add a document (already-parsed node tree, or XML text) and return it."""
        if isinstance(document, (str, bytes)):
            document = parse_document(document, uri=uri)
        if not isinstance(document, DocumentNode):
            raise StorageError(
                f"expected a DocumentNode or XML text, got {type(document).__name__}")
        document.doc_id = len(self._documents)
        if document.node_id < 0:
            document.assign_node_ids()
        self._documents.append(document)
        if self.use_incremental_maintenance:
            self._apply_delta(CollectionDelta(
                collection=self.name, kind=ADD, version=self._version + 1,
                document=compute_document_delta(document)))
        else:
            self._invalidate_derived()
        return document

    def add_documents(self, documents: Iterable[Union[DocumentNode, str, bytes]]) -> None:
        for document in documents:
            self.add_document(document)

    def remove_document(self, doc_id: int) -> None:
        """Remove a document by id (ids of later documents are reassigned)."""
        if not 0 <= doc_id < len(self._documents):
            raise StorageError(f"no document with id {doc_id} in collection {self.name!r}")
        removed = self._documents[doc_id]
        delta: Optional[CollectionDelta] = None
        if self.use_incremental_maintenance:
            # Capture the groups before removal, while doc_id is intact.
            delta = CollectionDelta(
                collection=self.name, kind=REMOVE, version=self._version + 1,
                document=compute_document_delta(removed))
        del self._documents[doc_id]
        for index, document in enumerate(self._documents):
            document.doc_id = index
        if delta is not None:
            self._apply_delta(delta)
        else:
            self._invalidate_derived()

    def _apply_delta(self, delta: CollectionDelta) -> None:
        """Fold one add/remove into the cached derived state and journal it."""
        if self._summary is not None:
            self._summary = self._summary.apply_delta(delta)
        if self._columnar is not None:
            self._columnar = self._columnar.apply_delta(delta)
        if self._accumulator is not None:
            self._accumulator.apply_delta(delta)
        self._statistics = None  # snapshot lazily from the accumulator
        self._version += 1
        self._delta_log.record(delta)
        self._notify_change()

    def _invalidate_derived(self) -> None:
        """Drop the cached statistics and path summary; bump the version.

        This is the full-rebuild path: it also breaks the delta journal,
        because in-place edits (or non-incremental mode) cannot be
        replayed -- consumers that ask for deltas across this point get
        ``None`` and rebuild.
        """
        self._statistics = None
        self._summary = None
        self._accumulator = None
        self._columnar = None
        self._version += 1
        self._delta_log.mark_discontinuity(self._version)
        self._notify_change()

    # ------------------------------------------------------------------
    # Change propagation
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[["XmlCollection"], None],
                  weak: bool = False) -> None:
        """Register a callback fired after every data-version bump.

        With ``weak=True`` (bound methods only) the collection holds the
        callback's owner weakly and drops the listener automatically
        once the owner is garbage-collected -- for consumers with
        shorter lifetimes than the collection (e.g. per-request query
        executors), which would otherwise be pinned forever by the
        listener list.
        """
        if weak:
            self._change_listeners.append(weakref.WeakMethod(callback))
        else:
            self._change_listeners.append(callback)

    def _notify_change(self) -> None:
        dead: List[object] = []
        for listener in self._change_listeners:
            if isinstance(listener, weakref.WeakMethod):
                callback = listener()
                if callback is None:
                    dead.append(listener)
                    continue
            else:
                callback = listener
            callback(self)
        for listener in dead:
            self._change_listeners.remove(listener)

    def deltas_since(self, version: int) -> Optional[List[CollectionDelta]]:
        """The journal of changes after ``version`` (oldest first), or
        ``None`` when the journal cannot bridge the gap (history trimmed,
        in-place edits, or incremental maintenance disabled) -- the
        consumer must then rebuild its derived state."""
        return self._delta_log.since(version)

    @property
    def version(self) -> int:
        """Data version: increments whenever a document is added/removed."""
        return self._version

    # ------------------------------------------------------------------
    @property
    def documents(self) -> List[DocumentNode]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[DocumentNode]:
        return iter(self._documents)

    def document(self, doc_id: int) -> DocumentNode:
        if not 0 <= doc_id < len(self._documents):
            raise StorageError(f"no document with id {doc_id} in collection {self.name!r}")
        return self._documents[doc_id]

    # ------------------------------------------------------------------
    @property
    def path_summary(self) -> PathSummary:
        """The structural path summary (built lazily in one O(nodes) pass).

        With incremental maintenance the cached summary is *replaced* --
        not rebuilt -- on document add/remove via
        :meth:`~repro.storage.path_summary.PathSummary.apply_delta`;
        without it, the summary is dropped and rebuilt here.  Either way
        consumers must re-fetch per use instead of holding one across
        updates.
        """
        if self._summary is None:
            summary = build_path_summary(self._documents)
            # Publication seam: a persistent injected fault raises here,
            # before the cache assignment, so a failed publish leaves the
            # memo empty (crash-safe) rather than half-published.
            guarded_fault_point("snapshot.publish")
            self._summary = summary
        return self._summary

    @property
    def columnar_store(self) -> ColumnarStore:
        """The columnar pre/post encoding of this collection (lazy).

        Maintained exactly like :attr:`path_summary`: with incremental
        maintenance the cached store is *replaced* on document
        add/remove via
        :meth:`~repro.storage.columnar.ColumnarStore.apply_delta`;
        without it, it is dropped and rebuilt here.  Consumers must
        re-fetch per use instead of holding one across updates.
        """
        if self._columnar is None:
            store = build_columnar_store(self._documents)
            # Publication seam, as for the path summary: a persistent
            # injected fault raises before the cache assignment.
            guarded_fault_point("snapshot.publish")
            self._columnar = store
        return self._columnar

    @property
    def statistics(self) -> DatabaseStatistics:
        """The path synopsis for this collection (collected lazily, cached).

        Derived from :attr:`path_summary`, so statistics collection and
        structural lookups share a single traversal of the documents.
        With incremental maintenance the synopsis is snapshotted from a
        delta-maintained accumulator (O(distinct paths)) instead of
        recollected from all nodes.
        """
        if self._statistics is None:
            if self.use_incremental_maintenance:
                if self._accumulator is None:
                    accumulator = StatisticsAccumulator.from_summary(
                        self.path_summary)
                    guarded_fault_point("stats.rebuild")
                    self._accumulator = accumulator
                self._statistics = self._accumulator.snapshot()
            else:
                statistics = collect_statistics_from_summary(self.path_summary)
                guarded_fault_point("stats.rebuild")
                self._statistics = statistics
        return self._statistics

    def invalidate_statistics(self) -> None:
        """Force statistics and the path summary to be re-collected
        (after bulk in-place document edits)."""
        self._invalidate_derived()


@cache_contract(memos={
    "_signature_cache": {"policy": "push", "readers": ("data_signature",),
                         "refreshers": ("_on_collection_change",
                                        "create_collection")},
    "_merged_statistics": {"policy": "push", "readers": ("statistics",),
                           "refreshers": ("_on_collection_change",
                                          "create_collection",
                                          "invalidate_statistics")},
    "_merged_signature": {"policy": "push", "readers": ("statistics",),
                          "refreshers": ("invalidate_statistics",)},
})
class XmlDatabase:
    """A set of collections plus the system catalog.

    This is the "XML Database" box of Figure 1: the advisor receives it
    together with the workload, the optimizer consults its statistics and
    catalog, and the executor runs queries against its documents.
    """

    def __init__(self, name: str = "xmldb",
                 use_incremental_maintenance: bool = True,
                 delta_log_capacity: int = DELTA_LOG_CAPACITY) -> None:
        if delta_log_capacity < 1:
            raise ValueError(
                f"delta_log_capacity must be positive, got {delta_log_capacity}")
        self.name = name
        self.use_incremental_maintenance = use_incremental_maintenance
        #: Journal capacity handed to every collection this database
        #: creates (see :class:`~repro.storage.maintenance.DeltaLog`):
        #: consumers that fall further behind than this rebuild instead
        #: of catching up from deltas.
        self.delta_log_capacity = delta_log_capacity
        self._collections: Dict[str, XmlCollection] = {}
        self.catalog = Catalog()
        self._merged_statistics: Optional[DatabaseStatistics] = None
        self._merged_signature: Optional[Tuple[Tuple[str, int], ...]] = None
        self._signature_cache: Optional[Tuple[Tuple[str, int], ...]] = None

    # ------------------------------------------------------------------
    # Collections
    # ------------------------------------------------------------------
    def create_collection(self, name: str) -> XmlCollection:
        """Create (or return the existing) collection called ``name``."""
        if name in self._collections:
            return self._collections[name]
        collection = XmlCollection(
            name, use_incremental_maintenance=self.use_incremental_maintenance,
            delta_log_capacity=self.delta_log_capacity)
        collection.subscribe(self._on_collection_change)
        self._collections[name] = collection
        self._merged_statistics = None
        self._signature_cache = None
        return collection

    def _on_collection_change(self, _collection: XmlCollection) -> None:
        """Version-bump listener: memoized signature and merged
        statistics are stale the moment any collection changes."""
        self._signature_cache = None
        self._merged_statistics = None

    def collection(self, name: str) -> XmlCollection:
        if name not in self._collections:
            raise StorageError(f"unknown collection {name!r}")
        return self._collections[name]

    @property
    def collections(self) -> List[XmlCollection]:
        return list(self._collections.values())

    @property
    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def add_document(self, collection_name: str,
                     document: Union[DocumentNode, str, bytes]) -> DocumentNode:
        """Add a document to ``collection_name`` (creating it if needed)."""
        collection = self.create_collection(collection_name)
        return collection.add_document(document)

    def all_documents(self) -> List[DocumentNode]:
        documents: List[DocumentNode] = []
        for collection in self._collections.values():
            documents.extend(collection.documents)
        return documents

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def data_signature(self) -> Tuple[Tuple[str, int], ...]:
        """A cheap fingerprint of the database contents.

        Changes whenever a collection is created or any collection's
        documents change; consumers (merged statistics, the executor's
        document lookup) compare signatures to detect staleness.
        Memoized behind the per-collection version listeners, so the
        hot-path staleness checks (executor per query, optimizer per
        plan-cache probe, evaluator per entry point) stop re-deriving it
        from every collection on every call.
        """
        if self._signature_cache is None:
            self._signature_cache = tuple(
                sorted((collection.name, collection.version)
                       for collection in self._collections.values()))
        return self._signature_cache

    @property
    @builder
    def statistics(self) -> DatabaseStatistics:
        """Merged statistics over every collection (the optimizer's view).

        Recomputed automatically when any collection's documents change
        -- including documents added directly via
        ``collection.add_document`` -- so the optimizer never costs plans
        against a stale synopsis.
        """
        signature = self.data_signature()
        if self._merged_statistics is None or signature != self._merged_signature:
            merged = DatabaseStatistics()
            for collection in self._collections.values():
                stats = collection.statistics
                merged.merge(stats)
                # Keep the per-collection sub-synopses addressable on the
                # merged object: the collection-scoped cost model routes
                # queries against them, and cached plans/costings are
                # keyed to their data versions.
                merged.collection_stats[collection.name] = stats
                merged.collection_versions[collection.name] = collection.version
            # Publication seam: fails before the cache assignments, so
            # the merged snapshot is either fully published or not at all.
            guarded_fault_point("snapshot.publish")
            self._merged_statistics = merged
            self._merged_signature = signature
        return self._merged_statistics

    def invalidate_statistics(self) -> None:
        """Invalidate cached statistics (and path summaries) on the
        database and all collections."""
        self._merged_statistics = None
        self._merged_signature = None
        for collection in self._collections.values():
            collection.invalidate_statistics()

    def runstats(self) -> DatabaseStatistics:
        """Recollect statistics eagerly and return them (RUNSTATS analogue)."""
        self.invalidate_statistics()
        return self.statistics

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Readable one-paragraph summary used by the CLI and reports."""
        stats = self.statistics
        return (f"database {self.name!r}: {len(self._collections)} collection(s), "
                f"{stats.document_count} documents, "
                f"{stats.total_element_count} elements, "
                f"{len(stats.path_stats)} distinct paths, "
                f"~{stats.total_data_bytes / 1024:.0f} KiB of data")
