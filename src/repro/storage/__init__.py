"""Storage engine substrate: documents, statistics, catalog, pages.

This package stands in for DB2's pureXML storage layer.  It provides:

* :class:`~repro.storage.document_store.XmlCollection` and
  :class:`~repro.storage.document_store.XmlDatabase` -- named collections
  of XML documents (the analogue of tables with an XML column);
* :class:`~repro.storage.path_summary.PathSummary` -- the structural
  path index: one O(nodes) pass maps every distinct rooted simple path
  to its element/attribute nodes per document.  Statistics collection,
  physical index materialization and the executor's document-scan path
  all share this summary instead of re-walking the node trees;
* :class:`~repro.storage.statistics.DatabaseStatistics` -- the per-path
  synopsis (cardinalities, distinct values, value ranges, key widths)
  that RUNSTATS would gather and that both the optimizer's cost model and
  the advisor's index-size estimation read.  It is derived from the
  path summary and invalidated alongside it on document add/remove;
* :class:`~repro.storage.catalog.Catalog` -- the system catalog holding
  physical and *virtual* index definitions.  Virtual indexes are the
  paper's central mechanism: they exist only in the catalog so the
  optimizer can enumerate and cost hypothetical configurations;
* :mod:`repro.storage.maintenance` -- delta-propagation maintenance:
  document change captured as per-path node-group deltas that the
  summary, the statistics accumulator, physical indexes and the
  optimizer/advisor invalidation layers consume instead of tearing
  derived state down (see the module docstring for the contract);
* :mod:`repro.storage.pages` -- page-size accounting shared by the cost
  model and the size estimator.
"""

from repro.storage.catalog import Catalog, CatalogError
from repro.storage.document_store import StorageError, XmlCollection, XmlDatabase
from repro.storage.maintenance import (
    CollectionDelta,
    DataChange,
    DataChangeTracker,
    DeltaLog,
    DocumentDelta,
    compute_document_delta,
)
from repro.storage.pages import PAGE_SIZE_BYTES, bytes_to_pages, pages_to_bytes
from repro.storage.path_summary import PathSummary, build_path_summary
from repro.storage.statistics import (
    DatabaseStatistics,
    PathStatistics,
    StatisticsAccumulator,
    collect_statistics,
    collect_statistics_from_summary,
)

__all__ = [
    "Catalog",
    "CatalogError",
    "CollectionDelta",
    "DataChange",
    "DataChangeTracker",
    "DatabaseStatistics",
    "DeltaLog",
    "DocumentDelta",
    "PAGE_SIZE_BYTES",
    "PathStatistics",
    "PathSummary",
    "StatisticsAccumulator",
    "StorageError",
    "XmlCollection",
    "XmlDatabase",
    "build_path_summary",
    "bytes_to_pages",
    "collect_statistics",
    "collect_statistics_from_summary",
    "compute_document_delta",
    "pages_to_bytes",
]
