"""Page-size accounting shared by the cost model and the size estimator.

DB2 stores XML data and indexes on fixed-size pages; the advisor's disk
space budget and the optimizer's I/O cost are both expressed in pages.
We use a 4 KiB page (DB2's default for XML table spaces is 4-32 KiB; the
absolute value only scales costs, it does not change who wins).
"""

from __future__ import annotations

import math

#: Bytes per storage page.
PAGE_SIZE_BYTES = 4096

#: Fraction of a page usable for index entries after per-page overhead
#: (slot directory, page header) and the typical B-tree fill factor.
INDEX_PAGE_FILL_FACTOR = 0.70

#: Per-node overhead of the native XML storage format (node header,
#: string-table reference, parent/child slots), in bytes.
XML_NODE_OVERHEAD_BYTES = 16

#: Per-entry overhead of an index entry beyond the key itself
#: (record id = document id + node id, plus slot overhead), in bytes.
INDEX_ENTRY_OVERHEAD_BYTES = 12

#: Key width charged for a DOUBLE index entry.
DOUBLE_KEY_BYTES = 8


def bytes_to_pages(size_bytes: float) -> int:
    """Convert a byte count to whole pages (always at least one for > 0)."""
    if size_bytes <= 0:
        return 0
    return max(1, math.ceil(size_bytes / PAGE_SIZE_BYTES))


def pages_to_bytes(pages: float) -> int:
    """Convert a page count back to bytes."""
    return int(pages * PAGE_SIZE_BYTES)


def index_entry_bytes(key_width: float) -> float:
    """Size of one index entry, including record-id and slot overhead."""
    return key_width + INDEX_ENTRY_OVERHEAD_BYTES


def index_size_bytes(entry_count: float, key_width: float) -> float:
    """Estimated on-disk size of an index with ``entry_count`` entries.

    Accounts for the page fill factor, so it slightly over-estimates the
    raw entry bytes -- matching how a real B-tree occupies space.
    """
    if entry_count <= 0:
        return 0.0
    raw = entry_count * index_entry_bytes(key_width)
    return raw / INDEX_PAGE_FILL_FACTOR
