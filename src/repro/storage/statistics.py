"""Path-level statistics (the RUNSTATS analogue for XML data).

The optimizer's cost model and the advisor's index-size estimation never
look at the documents directly -- they consult a *path synopsis*: for
every distinct simple path in the database, how many nodes have that
path, how many distinct values they carry, how wide the values are, and
the numeric range when values are numeric.  This mirrors the XML
statistics DB2 collects and the paper's cost estimation relies on
("Cost estimation using DB statistics" in Figure 1).

Statistics are collected once per collection and merged per database;
collection is O(total nodes).  The merged snapshot keeps each
collection's sub-synopsis addressable (:attr:`DatabaseStatistics.collection_stats`)
so the collection-scoped cost model can route queries to -- and merge
statistics over -- exactly the collections their patterns can match
(:meth:`DatabaseStatistics.merged_over`).  Collection no longer walks the node trees
itself: it derives the synopsis from the collection's structural
:class:`~repro.storage.path_summary.PathSummary`, so statistics, index
builds and scan execution all share one traversal of the data.

Incremental maintenance: the traversal feeds a
:class:`StatisticsAccumulator` -- per-path value/numeric multisets plus
running counters -- which can *also* absorb one document's
:class:`~repro.storage.maintenance.DocumentDelta` (add or retract) in
O(document nodes) and emit a fresh :class:`DatabaseStatistics` snapshot
in O(distinct paths).  The full build and the delta path share the same
recording code, so an incrementally maintained synopsis is byte-
identical to a rebuild by construction.  Snapshots stay immutable:
the accumulator is mutable private state of the collection; every
``snapshot()`` call produces a new statistics object.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.contracts import builder, cache_contract, snapshot_contract
from repro.storage.path_summary import PathSummary, build_path_summary
from repro.xmldb.nodes import (
    DocumentNode,
    NodeKind,
    XmlNode,
    normalized_node_value,
)
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.storage.maintenance import CollectionDelta, DocumentDelta

#: Default assumed width (bytes) of a string value when a path carries no
#: values at all (pure structural elements).
_DEFAULT_KEY_WIDTH = 8.0


@snapshot_contract(builders=("merge",), mutators=("merge",))
@dataclass
class PathStatistics:
    """Statistics for one distinct simple path.

    Attributes
    ----------
    path:
        The rooted simple path, e.g. ``/site/regions/africa/item/quantity``.
    node_count:
        Number of nodes (across all documents) with this path.
    document_count:
        Number of documents containing at least one such node.
    distinct_values:
        Number of distinct typed (whitespace-normalized string) values.
    total_value_bytes:
        Sum of value lengths, used to derive the average key width.
    numeric_count:
        How many of the values cast to DOUBLE.
    min_value / max_value:
        Numeric range over the castable values (``None`` when none cast).
    """

    path: str
    node_count: int = 0
    document_count: int = 0
    distinct_values: int = 0
    total_value_bytes: int = 0
    numeric_count: int = 0
    min_value: Optional[float] = None
    max_value: Optional[float] = None

    @property
    def is_attribute_path(self) -> bool:
        return "/@" in self.path

    @property
    def average_value_bytes(self) -> float:
        if self.node_count == 0 or self.total_value_bytes == 0:
            return _DEFAULT_KEY_WIDTH
        return self.total_value_bytes / self.node_count

    @property
    def mostly_numeric(self) -> bool:
        """True when most values on this path cast to DOUBLE."""
        return self.node_count > 0 and self.numeric_count >= 0.5 * self.node_count

    def merge(self, other: "PathStatistics") -> None:
        """Fold another collection's statistics for the same path into this one."""
        self.node_count += other.node_count
        self.document_count += other.document_count
        # Distinct values cannot be merged exactly without the value sets;
        # take the max as a lower bound and the sum as an upper bound, and
        # use the geometric-style compromise the DB2 literature uses.
        low = max(self.distinct_values, other.distinct_values)
        high = self.distinct_values + other.distinct_values
        self.distinct_values = int(round((low + high) / 2)) if high else 0
        self.total_value_bytes += other.total_value_bytes
        self.numeric_count += other.numeric_count
        for bound in (other.min_value,):
            if bound is not None:
                self.min_value = bound if self.min_value is None else min(self.min_value, bound)
        for bound in (other.max_value,):
            if bound is not None:
                self.max_value = bound if self.max_value is None else max(self.max_value, bound)


@snapshot_contract(builders=("merge", "copy", "merged_over"),
                   mutators=("merge",),
                   memo_attrs=("_match_cache", "size_cache",
                               "_routing_cache"))
@cache_contract(memos={
    "_match_cache": {"policy": "object-keyed"},
    "size_cache": {"policy": "object-keyed"},
    "_routing_cache": {"policy": "object-keyed"},
})
@dataclass
class DatabaseStatistics:
    """The full path synopsis for a collection or a whole database."""

    path_stats: Dict[str, PathStatistics] = field(default_factory=dict)
    document_count: int = 0
    total_node_count: int = 0
    total_element_count: int = 0
    total_text_bytes: int = 0
    #: Memo of pattern -> matching paths (pattern matching is the hot loop
    #: of size estimation and cost modelling).  Not part of equality.
    _match_cache: Dict[PathPattern, List[str]] = field(default_factory=dict,
                                                       repr=False, compare=False)
    #: Memo of index key -> estimated size in bytes, maintained by
    #: :mod:`repro.index.sizing`.  Lives and dies with this statistics
    #: object (statistics are rebuilt, not mutated, on data changes) and
    #: is cleared defensively by :meth:`merge`.  Not part of equality.
    size_cache: Dict[Tuple[str, str], float] = field(default_factory=dict,
                                                     repr=False, compare=False)
    #: Addressable per-collection sub-synopses, populated (in collection
    #: insertion order) by :attr:`XmlDatabase.statistics` on the merged
    #: object.  The collection-scoped cost model routes queries by
    #: matching their patterns against these instead of the flattened
    #: whole-database synopsis.  Empty on leaf (single-collection)
    #: snapshots.  Not part of equality.
    collection_stats: Dict[str, "DatabaseStatistics"] = field(
        default_factory=dict, repr=False, compare=False)
    #: The data version each sub-synopsis was snapshotted at.  Staleness
    #: of routed plans/costings is decided by diffing these snapshots
    #: between polls (:class:`~repro.storage.maintenance.DataChangeTracker`
    #: + :meth:`DataChange.stales_routed_query`); the versions here
    #: document which state the merged view reflects.
    collection_versions: Dict[str, int] = field(default_factory=dict,
                                                repr=False, compare=False)
    #: Memo of routing set -> merged statistics over that subset of the
    #: sub-synopses.  Not part of equality.
    _routing_cache: Dict[Tuple[str, ...], "DatabaseStatistics"] = field(
        default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def distinct_paths(self) -> List[str]:
        return sorted(self.path_stats)

    def stats_for_path(self, path: str) -> Optional[PathStatistics]:
        return self.path_stats.get(path)

    def paths_matching(self, pattern: PathPattern) -> List[str]:
        """All distinct simple paths matched by ``pattern`` (memoized)."""
        cached = self._match_cache.get(pattern)
        if cached is None:
            cached = [path for path in self.path_stats if pattern.matches(path)]
            self._match_cache[pattern] = cached
        return cached

    def cardinality(self, pattern: PathPattern) -> int:
        """Number of nodes in the database matched by ``pattern``."""
        return sum(self.path_stats[p].node_count for p in self.paths_matching(pattern))

    def distinct_values(self, pattern: PathPattern) -> int:
        """Approximate number of distinct values among nodes matched by ``pattern``."""
        return sum(self.path_stats[p].distinct_values
                   for p in self.paths_matching(pattern))

    def average_key_width(self, pattern: PathPattern) -> float:
        """Average value width (bytes) over nodes matched by ``pattern``."""
        matched = self.paths_matching(pattern)
        total_nodes = sum(self.path_stats[p].node_count for p in matched)
        if total_nodes == 0:
            return _DEFAULT_KEY_WIDTH
        total_bytes = sum(self.path_stats[p].total_value_bytes for p in matched)
        if total_bytes == 0:
            return _DEFAULT_KEY_WIDTH
        return total_bytes / total_nodes

    def documents_containing(self, pattern: PathPattern) -> int:
        """Upper-bound estimate of documents containing a node matched by
        ``pattern`` (capped at the document count)."""
        matched = self.paths_matching(pattern)
        if not matched:
            return 0
        upper = max(self.path_stats[p].document_count for p in matched)
        return min(self.document_count, max(upper, 1))

    def numeric_range(self, pattern: PathPattern) -> Optional[Tuple[float, float]]:
        """The [min, max] numeric range of values under ``pattern``."""
        lows: List[float] = []
        highs: List[float] = []
        for path in self.paths_matching(pattern):
            stat = self.path_stats[path]
            if stat.min_value is not None and stat.max_value is not None:
                lows.append(stat.min_value)
                highs.append(stat.max_value)
        if not lows:
            return None
        return min(lows), max(highs)

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------
    def predicate_selectivity(self, pattern: PathPattern, op: Optional[BinaryOp],
                              value: Optional[Union[str, float]]) -> float:
        """Fraction of the nodes matched by ``pattern`` that satisfy the
        comparison ``op value``.

        Uses the textbook uniformity assumptions: ``1/distinct`` for
        equality, a linear interpolation over the [min, max] range for
        inequalities, and 1.0 for pure existence predicates (every node
        with the path "satisfies" it).
        """
        if op is None or value is None:
            return 1.0
        cardinality = self.cardinality(pattern)
        if cardinality == 0:
            return 0.0
        distinct = max(1, self.distinct_values(pattern))
        if op is BinaryOp.EQ:
            return min(1.0, 1.0 / distinct)
        if op is BinaryOp.NE:
            return max(0.0, 1.0 - 1.0 / distinct)
        # Range predicate: interpolate when we know the numeric range.
        numeric_value = _as_float(value)
        bounds = self.numeric_range(pattern)
        if numeric_value is None or bounds is None or bounds[1] <= bounds[0]:
            return 1.0 / 3.0  # classical default for range predicates
        low, high = bounds
        fraction_below = (numeric_value - low) / (high - low)
        fraction_below = min(1.0, max(0.0, fraction_below))
        if op in (BinaryOp.LT, BinaryOp.LE):
            selectivity = fraction_below
        else:
            selectivity = 1.0 - fraction_below
        return min(1.0, max(1.0 / cardinality, selectivity))

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def total_data_bytes(self) -> float:
        """Approximate on-disk size of the XML data itself."""
        from repro.storage.pages import XML_NODE_OVERHEAD_BYTES
        return (self.total_node_count * XML_NODE_OVERHEAD_BYTES
                + self.total_text_bytes)

    @property
    def columnar_bytes(self) -> int:
        """Footprint of the columnar pre/post encoding of this data.

        Derived from the synopsis alone: every stored node (element or
        attribute; document nodes are virtual in the columnar plane)
        costs :data:`~repro.storage.columnar.COLUMNAR_NODE_BYTES` of
        column/postings/value-projection storage plus its normalized
        typed-value text, and every numeric value additionally charges
        :data:`~repro.storage.columnar.NUMERIC_PROJECTION_ENTRY_BYTES`
        for its slot in the path's parsed DOUBLE column (the synopsis's
        ``numeric_count`` counts castable normalized values exactly as
        the values column does).  By construction this equals
        ``ColumnarStore.nbytes`` of the same data -- the advisor's size
        estimates and the tuning controller's ``build_budget_bytes``
        consult it so the encoding's real footprint is accounted for.
        """
        from repro.storage.columnar import (
            COLUMNAR_NODE_BYTES,
            NUMERIC_PROJECTION_ENTRY_BYTES,
        )
        stored_nodes = self.total_node_count - self.document_count
        value_bytes = sum(stat.total_value_bytes
                          for stat in self.path_stats.values())
        numeric_values = sum(stat.numeric_count
                             for stat in self.path_stats.values())
        return (stored_nodes * COLUMNAR_NODE_BYTES + value_bytes
                + numeric_values * NUMERIC_PROJECTION_ENTRY_BYTES)

    # ------------------------------------------------------------------
    # Per-collection routing views
    # ------------------------------------------------------------------
    def merged_over(self, names: Iterable[str]) -> "DatabaseStatistics":
        """Merged statistics over the sub-synopses named by ``names``.

        This is the collection-scoped cost model's view of a routing
        set: the same merge the database performs over all collections,
        restricted to the routed subset (and performed in the same
        collection insertion order, so covering every collection
        reproduces the whole-database synopsis byte-identically --
        in fact that case returns ``self``).  Memoized per routing set;
        statistics objects are rebuilt, never mutated, on data change,
        so the memo cannot go stale.
        """
        if not self.collection_stats:
            return self
        requested = set(names) & set(self.collection_stats)
        if len(requested) >= len(self.collection_stats) or not requested:
            # Full coverage is exactly this object; an empty routing set
            # falls back to the unscoped synopsis (the legacy model).
            return self
        key = tuple(sorted(requested))
        cached = self._routing_cache.get(key)
        if cached is None:
            cached = DatabaseStatistics()
            for name, stats in self.collection_stats.items():
                if name in requested:
                    cached.merge(stats)
            self._routing_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "DatabaseStatistics") -> None:
        """Fold another statistics object (e.g. another collection) into this one."""
        self._match_cache.clear()
        self.size_cache.clear()
        self.document_count += other.document_count
        self.total_node_count += other.total_node_count
        self.total_element_count += other.total_element_count
        self.total_text_bytes += other.total_text_bytes
        for path, stat in other.path_stats.items():
            if path in self.path_stats:
                self.path_stats[path].merge(stat)
            else:
                self.path_stats[path] = PathStatistics(
                    path=stat.path,
                    node_count=stat.node_count,
                    document_count=stat.document_count,
                    distinct_values=stat.distinct_values,
                    total_value_bytes=stat.total_value_bytes,
                    numeric_count=stat.numeric_count,
                    min_value=stat.min_value,
                    max_value=stat.max_value,
                )

    def copy(self) -> "DatabaseStatistics":
        fresh = DatabaseStatistics()
        fresh.merge(self)
        return fresh


def collect_statistics(documents: Iterable[DocumentNode]) -> DatabaseStatistics:
    """Scan ``documents`` and build the path synopsis.

    Element paths record the element's own text value (concatenated
    descendant text is *not* used: only direct text children count as the
    element's indexable value, matching how leaf-value indexes behave);
    attribute paths record the attribute value.

    The documents are summarized in one structural pass and the synopsis
    is derived from the summary (see
    :func:`collect_statistics_from_summary`).
    """
    return collect_statistics_from_summary(
        build_path_summary(documents, renumber=True))


def collect_statistics_from_summary(summary: PathSummary) -> DatabaseStatistics:
    """Derive the path synopsis from an already-built structural summary.

    This is the shared-traversal entry point: the collection builds its
    :class:`~repro.storage.path_summary.PathSummary` once, and
    statistics are computed from the summary's per-path node lists
    without touching the document trees again (apart from reading each
    node's direct text value).  The synopsis is produced by a
    :class:`StatisticsAccumulator`, the same machinery the delta
    maintenance path uses, so incremental and full collection cannot
    diverge.
    """
    return StatisticsAccumulator.from_summary(summary).snapshot()


def _node_record_value(node: XmlNode) -> Tuple[str, int]:
    """The normalized value a node contributes to the synopsis plus its
    text-byte charge (attribute bytes are counted unstripped, element
    direct text stripped -- matching the original collection pass
    exactly).  The value itself comes from the one shared
    :func:`~repro.xmldb.nodes.normalized_node_value` definition, so the
    synopsis and the columnar values column always agree byte-for-byte.
    """
    value = normalized_node_value(node)
    if node.kind == NodeKind.ATTRIBUTE:
        return value, len(node.value)
    direct_text = "".join(child.value for child in node.children
                          if child.kind == NodeKind.TEXT)
    return value, len(direct_text.strip())


class _PathAccumulator:
    """Mutable per-path state: the multisets a retractable synopsis needs."""

    __slots__ = ("node_count", "document_count", "total_value_bytes",
                 "numeric_count", "values", "numeric_values",
                 "min_value", "max_value")

    def __init__(self) -> None:
        self.node_count = 0
        self.document_count = 0
        self.total_value_bytes = 0
        self.numeric_count = 0
        #: Multiset of normalized values (a plain distinct-value *set*
        #: cannot support retraction).
        self.values: Counter = Counter()
        #: Multiset of castable numeric values, for exact min/max under
        #: removal.
        self.numeric_values: Counter = Counter()
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def add_node(self, node: XmlNode) -> int:
        normalized, text_bytes = _node_record_value(node)
        self.node_count += 1
        if normalized:
            self.values[normalized] += 1
            self.total_value_bytes += len(normalized)
            number = _as_float(normalized)
            if number is not None:
                self.numeric_count += 1
                self.numeric_values[number] += 1
                if self.min_value is None or number < self.min_value:
                    self.min_value = number
                if self.max_value is None or number > self.max_value:
                    self.max_value = number
        return text_bytes

    def remove_node(self, node: XmlNode) -> int:
        normalized, text_bytes = _node_record_value(node)
        self.node_count -= 1
        if normalized:
            remaining = self.values[normalized] - 1
            if remaining:
                self.values[normalized] = remaining
            else:
                del self.values[normalized]
            self.total_value_bytes -= len(normalized)
            number = _as_float(normalized)
            if number is not None:
                self.numeric_count -= 1
                remaining = self.numeric_values[number] - 1
                if remaining:
                    self.numeric_values[number] = remaining
                else:
                    del self.numeric_values[number]
                    if number == self.min_value or number == self.max_value:
                        if self.numeric_values:
                            self.min_value = min(self.numeric_values)
                            self.max_value = max(self.numeric_values)
                        else:
                            self.min_value = None
                            self.max_value = None
        return text_bytes

    def to_statistics(self, path: str) -> PathStatistics:
        return PathStatistics(
            path=path,
            node_count=self.node_count,
            document_count=self.document_count,
            distinct_values=len(self.values),
            total_value_bytes=self.total_value_bytes,
            numeric_count=self.numeric_count,
            min_value=self.min_value,
            max_value=self.max_value,
        )


class StatisticsAccumulator:
    """Retractable synopsis state for one collection.

    Built once from a path summary (or empty), then kept current by
    absorbing :class:`~repro.storage.maintenance.CollectionDelta`
    operations in O(changed-document nodes); :meth:`snapshot` emits an
    immutable :class:`DatabaseStatistics` in O(distinct paths).
    """

    def __init__(self) -> None:
        self._paths: Dict[str, _PathAccumulator] = {}
        self.document_count = 0
        self.total_text_bytes = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_summary(cls, summary: PathSummary) -> "StatisticsAccumulator":
        accumulator = cls()
        accumulator.document_count = summary.document_count
        paths = accumulator._paths
        for path in summary.distinct_paths:
            entry = paths[path] = _PathAccumulator()
            for _doc_key, nodes in summary.doc_nodes_for_path(path).items():
                entry.document_count += 1
                for node in nodes:
                    accumulator.total_text_bytes += entry.add_node(node)
        return accumulator

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, delta: "CollectionDelta") -> None:
        if delta.is_add:
            self.add_document(delta.document)
        else:
            self.remove_document(delta.document)

    def add_document(self, document: "DocumentDelta") -> None:
        self.document_count += 1
        for path, nodes in document.path_groups.items():
            entry = self._paths.get(path)
            if entry is None:
                entry = self._paths[path] = _PathAccumulator()
            entry.document_count += 1
            for node in nodes:
                self.total_text_bytes += entry.add_node(node)

    def remove_document(self, document: "DocumentDelta") -> None:
        self.document_count -= 1
        for path, nodes in document.path_groups.items():
            entry = self._paths[path]
            entry.document_count -= 1
            for node in nodes:
                self.total_text_bytes -= entry.remove_node(node)
            if entry.node_count == 0:
                del self._paths[path]

    # ------------------------------------------------------------------
    @builder
    def snapshot(self) -> DatabaseStatistics:
        """Emit an immutable synopsis of the current state (O(paths))."""
        stats = DatabaseStatistics()
        stats.document_count = self.document_count
        stats.total_node_count = self.document_count  # the document nodes
        for path in sorted(self._paths):
            entry = self._paths[path]
            stats.path_stats[path] = entry.to_statistics(path)
            stats.total_node_count += entry.node_count
            if "/@" not in path:
                stats.total_element_count += entry.node_count
        stats.total_text_bytes = self.total_text_bytes
        return stats


def _as_float(value: Union[str, float, None]) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, float):
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return None
