"""Columnar pre/post node encoding: the XPath-accelerator backend.

A :class:`ColumnarStore` is a per-collection snapshot that re-encodes the
object trees as parallel ``array``-module columns in one pass:

* ``pre`` -- the node's pre-order position (collection-wide; by
  construction ``pre[i] == i``, so the columns are pre-sorted and a
  subtree is a contiguous slice),
* ``post`` -- the post-order position (the classic pre/post plane:
  ``u`` is a descendant of ``v`` iff ``pre(v) < pre(u)`` and
  ``post(u) < post(v)``),
* ``parent`` -- the parent element's pre (``-1`` for document roots),
* ``kind`` -- element vs. attribute,
* ``path_id`` -- index into the append-only distinct simple-path table,
* ``values`` -- the node's whitespace-normalized typed value (the same
  value the statistics synopsis records, so the store's byte footprint
  is derivable from :class:`~repro.storage.statistics.DatabaseStatistics`).

Only elements and attributes are materialized (text/comment/PI nodes
contribute values but no rows), and the slab walk order -- element, its
attributes, then child subtrees -- matches ``assign_node_ids``'s
numbering of stored nodes, so *position order is document order*.

On top of the columns sits a vectorized axis engine: ``descendants``
is interval containment answered by :func:`bisect.bisect_left` over the
pre-sorted per-path postings (``sub[pre]`` holds each subtree's
exclusive end), child/attribute axes are parent-pre runs, and
:meth:`select_positions` composes them into an exact step-wise
evaluation with the interpreter's descendant-or-self semantics.  The
hot lookup path, :meth:`nodes_for_pattern`, exploits path determinism
instead: for a linear pattern, a node's membership in the interpreter's
result depends only on its simple path, so the store matches the
pattern against the path table with
:meth:`~repro.xpath.patterns.PathPattern.matches_evaluator` (exact
``//`` descendant-or-self semantics -- no ``pattern_summary_safe``
widening) and unions pre-sorted postings.

On top of the values column sits the *set-at-a-time predicate engine*:
per path, a lazy snapshot-memoized value projection (the postings
re-sorted by value, plus the parsed DOUBLE column over the castable
subset) turns an ``EQ``/range comparison into two bisects returning
pre-position runs, and :meth:`ColumnarStore.matching_documents` maps
those straight to doc-key sets -- the executor intersects one set per
predicate instead of materializing ``XmlNode`` lists per document.
Value extraction for value-only consumers reads the flat values column
in document order (:meth:`ColumnarStore.values_for_pattern`).

Maintenance mirrors :class:`~repro.storage.path_summary.PathSummary`:
the store is immutable once built and is replaced through
:meth:`apply_delta` under the existing
:class:`~repro.storage.maintenance.CollectionDelta` machinery -- an
insert renumbers one document's slab and splices it in, a delete is one
filtered pass -- the same contract as
``PhysicalPathIndex.apply_collection_delta``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.contracts import builder, cache_contract, snapshot_contract
from repro.telemetry import global_registry
from repro.xmldb.nodes import (
    DocumentNode,
    NodeKind,
    XmlNode,
    normalized_node_value,
)
from repro.xpath.ast import BinaryOp
from repro.xpath.patterns import PathPattern, PatternStep

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.storage.maintenance import CollectionDelta, DocumentDelta

KIND_ELEMENT = 0
KIND_ATTRIBUTE = 1

#: Deterministic per-node footprint of the encoding: five 8-byte columns
#: (pre, post, parent, path-id, sub), the 1-byte kind column, the node's
#: slot in its path's postings array, and its slot in the path's
#: value-sorted permutation (the string half of the value projection).
#: Together with the synopsis's per-path ``total_value_bytes`` and
#: ``numeric_count`` this makes the store's :attr:`ColumnarStore.nbytes`
#: derivable from statistics alone (see
#: ``DatabaseStatistics.columnar_bytes``), identically in both
#: ``use_columnar`` modes.
COLUMNAR_NODE_BYTES = 5 * array("q").itemsize + array("b").itemsize \
    + 2 * array("q").itemsize

#: Per-numeric-value charge of the parsed DOUBLE column of a path's
#: value projection.  The accounting counts castable entries of the
#: values column -- the same predicate the synopsis's ``numeric_count``
#: applies -- so the charge is deterministic regardless of which
#: projections happen to be built.
NUMERIC_PROJECTION_ENTRY_BYTES = array("d").itemsize

#: Shared empty results; callers must treat lookup results as read-only.
_NO_NODES: List[XmlNode] = []
_NO_VALUES: List[str] = []
_NO_POSITIONS = array("q")

#: The synopsis-shared value normalization (one definition in
#: :mod:`repro.xmldb.nodes`, so columns and synopsis can never disagree
#: on a value's bytes).
_normalized_value = normalized_node_value


def _castable(value: str) -> bool:
    """Whether a normalized value casts to DOUBLE -- the predicate the
    synopsis's ``numeric_count`` applies (the empty value never casts)."""
    if not value:
        return False
    try:
        float(value)
    except ValueError:
        return False
    return True


class _ValueProjection:
    """One path's postings re-ordered by value (lazy, snapshot-memoized).

    ``sorder`` permutes the path's postings by the node's normalized
    *typed* value -- the value the legacy comparison path
    (``executor._compare_node``) reads -- with ties in document order;
    ``svalues`` holds the sorted keys, so an EQ/range predicate over a
    string literal is two ``bisect`` calls returning a contiguous run of
    pre positions.  ``norder``/``nvalues`` are the same for the
    DOUBLE-castable subset under numeric order (non-castable nodes never
    satisfy a numeric comparison, not even ``!=``); NaN-valued nodes
    live in ``nanorder`` (they would break the sort order, and satisfy
    only ``!=``).
    """

    __slots__ = ("sorder", "svalues", "norder", "nvalues", "nanorder")

    def __init__(self, sorder: array, svalues: List[str], norder: array,
                 nvalues: array, nanorder: array) -> None:
        self.sorder = sorder
        self.svalues = svalues
        self.norder = norder
        self.nvalues = nvalues
        self.nanorder = nanorder

    def shifted(self, at: int, delta: int) -> "_ValueProjection":
        """The projection after every position ``>= at`` slides by
        ``delta`` (a monotone remap: values and tie order are untouched,
        so the key lists are structurally shared)."""
        def remap(arr: array) -> array:
            return array("q", (p + delta if p >= at else p for p in arr))
        return _ValueProjection(remap(self.sorder), self.svalues,
                                remap(self.norder), self.nvalues,
                                remap(self.nanorder))


def _build_projection(nodes: List[XmlNode], postings: array) -> _ValueProjection:
    """Sort one path's postings by value (stable over the ascending
    postings, so equal values stay in document order)."""
    sorder = array("q", sorted(postings, key=lambda p: nodes[p].typed_value()))
    svalues = [nodes[p].typed_value() for p in sorder]
    numeric: List[Tuple[float, int]] = []
    nans: List[int] = []
    for position in postings:
        value = nodes[position].double_value()
        if value is None:
            continue
        if value != value:  # NaN: totally unordered, keep apart
            nans.append(position)
        else:
            numeric.append((value, position))
    numeric.sort(key=lambda pair: pair[0])
    norder = array("q", (position for _, position in numeric))
    nvalues = array("d", (value for value, _ in numeric))
    return _ValueProjection(sorder, svalues, norder, nvalues, array("q", nans))


def _delta_document_node(document: "DocumentDelta") -> Optional[DocumentNode]:
    """Recover the :class:`DocumentNode` an add-delta describes (every
    delta node roots at it); ``None`` for an element-less document."""
    for nodes in document.path_groups.values():
        for node in nodes:
            current: XmlNode = node
            while current.parent is not None:
                current = current.parent
            if current.kind == NodeKind.DOCUMENT:
                return current  # type: ignore[return-value]
    return None


@snapshot_contract(builders=("add_document", "_encode_document", "_intern_path",
                             "_with_document_added", "_with_document_removed"),
                   mutators=("add_document", "_encode_document", "_intern_path"),
                   memo_attrs=("_pattern_paths", "_pattern_paths_strict",
                               "_label_positions", "_projections",
                               "_doc_starts"))
@cache_contract(memos={
    "_pattern_paths": {"policy": "object-keyed"},
    "_pattern_paths_strict": {"policy": "object-keyed"},
    "_label_positions": {"policy": "object-keyed"},
    "_projections": {"policy": "object-keyed"},
    "_doc_starts": {"policy": "object-keyed"},
})
class ColumnarStore:
    """Parallel pre/post columns over one collection's documents.

    Instances are built with :func:`build_columnar_store` (or repeated
    :meth:`add_document` calls) and are then treated as immutable; data
    changes produce a *new* store via :meth:`apply_delta`.
    """

    def __init__(self) -> None:
        self.pre = array("q")
        self.post = array("q")
        self.parent = array("q")
        self.kind = array("b")
        self.path_id = array("q")
        #: Exclusive end of each node's subtree slice: the descendants of
        #: the node at position ``p`` are exactly positions
        #: ``p+1 .. sub[p]-1``.
        self.sub = array("q")
        #: Whitespace-normalized typed value per position.
        self.values: List[str] = []
        #: Position -> the encoded node object (what lookups return).
        self._nodes: List[XmlNode] = []
        #: Append-only distinct simple-path table (paths are never
        #: retired, so pattern -> path-id memos survive removals).
        self._paths: List[str] = []
        self._path_index: Dict[str, int] = {}
        #: path id -> ascending positions of its nodes (the pre-sorted
        #: postings the axis engine bisects).
        self._postings: Dict[int, array] = {}
        #: doc key -> (start, end) slab bounds, in key order.
        self._doc_bounds: List[Tuple[int, int]] = []
        #: Memo: pattern -> path ids under evaluator (descendant-or-self)
        #: semantics -- the hot read-query matching.
        self._pattern_paths: Dict[PathPattern, Tuple[int, ...]] = {}
        #: Memo: pattern -> path ids under strict index-pattern
        #: semantics -- what physical index builds select.
        self._pattern_paths_strict: Dict[PathPattern, Tuple[int, ...]] = {}
        #: Memo: label -> ascending positions carrying it (axis engine).
        self._label_positions: Dict[str, array] = {}
        #: Memo: path id -> lazily built value projection (the path's
        #: postings re-sorted by value; see :class:`_ValueProjection`).
        #: Keyed to this immutable snapshot; apply_delta carries entries
        #: structurally for untouched paths and rebuilds only touched
        #: ones.
        self._projections: Dict[int, _ValueProjection] = {}
        #: Memo: ascending slab start offsets (position -> doc key is
        #: one bisect); derived from ``_doc_bounds`` on demand.
        self._doc_starts: Optional[array] = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add_document(self, document: Optional[DocumentNode],
                     doc_key: Optional[int] = None) -> None:
        """Encode one document's slab at the end of the columns.

        ``add_document`` always appends (the collection assigns document
        keys positionally); mid-sequence splices happen only through
        :meth:`apply_delta`.
        """
        if doc_key is not None and doc_key != len(self._doc_bounds):
            raise ValueError(
                f"columnar add_document appends (expected doc key "
                f"{len(self._doc_bounds)}, got {doc_key}); use apply_delta "
                f"to splice")
        self._label_positions.clear()
        self._projections.clear()
        self._doc_starts = None
        self._encode_document(document)

    def _encode_document(self, document: Optional[DocumentNode]) -> None:
        """One-pass slab encoding: element, its attributes, children."""
        start = len(self.pre)
        # Each stored node consumes exactly one post, so this slab's
        # posts occupy [start, start + slab length) like its pres.
        counter = [start]

        def walk(element: XmlNode, parent_pre: int) -> None:
            pos = len(self.pre)
            self.pre.append(pos)
            self.post.append(-1)  # patched when the subtree closes
            self.parent.append(parent_pre)
            self.kind.append(KIND_ELEMENT)
            pid = self._intern_path(element.simple_path())
            self.path_id.append(pid)
            self.sub.append(-1)
            self.values.append(_normalized_value(element))
            self._nodes.append(element)
            self._postings[pid].append(pos)
            for attribute in element.attributes:
                apos = len(self.pre)
                self.pre.append(apos)
                self.post.append(counter[0])  # attributes close immediately
                counter[0] += 1
                self.parent.append(pos)
                self.kind.append(KIND_ATTRIBUTE)
                apid = self._intern_path(attribute.simple_path())
                self.path_id.append(apid)
                self.sub.append(apos + 1)
                self.values.append(_normalized_value(attribute))
                self._nodes.append(attribute)
                self._postings[apid].append(apos)
            for child in element.children:
                if child.kind == NodeKind.ELEMENT:
                    walk(child, pos)
            self.post[pos] = counter[0]
            counter[0] += 1
            self.sub[pos] = len(self.pre)

        if document is not None:
            for child in document.children:
                if child.kind == NodeKind.ELEMENT:
                    walk(child, -1)
        self._doc_bounds.append((start, len(self.pre)))

    def _intern_path(self, path: str) -> int:
        pid = self._path_index.get(path)
        if pid is None:
            pid = len(self._paths)
            self._paths.append(path)
            self._path_index[path] = pid
            self._postings[pid] = array("q")
            # A genuinely new distinct path can change pattern -> paths
            # answers; memos keyed on the (append-only) table must go.
            if self._pattern_paths:
                self._pattern_paths.clear()
            if self._pattern_paths_strict:
                self._pattern_paths_strict.clear()
        return pid

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, delta: "CollectionDelta") -> "ColumnarStore":
        """A new store with ``delta`` applied (this one is unchanged).

        Same contract as ``PhysicalPathIndex.apply_collection_delta``
        and :meth:`PathSummary.apply_delta`: the result is byte-identical
        to rebuilding from the post-change documents, and untouched
        postings arrays are structurally shared with the predecessor.
        """
        if delta.is_add:
            return self._with_document_added(delta.document)
        return self._with_document_removed(delta.document)

    def _with_document_added(self, document: "DocumentDelta") -> "ColumnarStore":
        """Splice one document's renumbered slab in at its doc key."""
        slab = ColumnarStore()
        slab._encode_document(_delta_document_node(document))
        key = document.doc_key
        size = len(self.pre)
        if not 0 <= key <= len(self._doc_bounds):
            raise ValueError(f"add delta doc key {key} out of range")
        start = size if key == len(self._doc_bounds) else self._doc_bounds[key][0]
        length = len(slab.pre)

        fresh = ColumnarStore()
        fresh._paths = list(self._paths)
        fresh._path_index = dict(self._path_index)
        # Remap the slab's local path ids onto the shared table.
        remap = array("q", (0 for _ in slab._paths))
        touched: Dict[int, array] = {}
        for slab_pid, path in enumerate(slab._paths):
            pid = fresh._path_index.get(path)
            if pid is None:
                pid = len(fresh._paths)
                fresh._paths.append(path)
                fresh._path_index[path] = pid
            remap[slab_pid] = pid
            merged = touched.get(pid)
            if merged is None:
                merged = touched[pid] = array("q")
            merged.extend(p + start for p in slab._postings[slab_pid])

        fresh.pre = array("q", range(size + length))
        fresh.post = (self.post[:start]
                      + array("q", (v + start for v in slab.post))
                      + array("q", (v + length for v in self.post[start:])))
        fresh.parent = (self.parent[:start]
                        + array("q", (v + start if v >= 0 else v
                                      for v in slab.parent))
                        + array("q", (v + length if v >= 0 else v
                                      for v in self.parent[start:])))
        fresh.kind = self.kind[:start] + slab.kind + self.kind[start:]
        fresh.path_id = (self.path_id[:start]
                         + array("q", (remap[p] for p in slab.path_id))
                         + self.path_id[start:])
        fresh.sub = (self.sub[:start]
                     + array("q", (v + start for v in slab.sub))
                     + array("q", (v + length for v in self.sub[start:])))
        fresh.values = self.values[:start] + slab.values + self.values[start:]
        fresh._nodes = self._nodes[:start] + slab._nodes + self._nodes[start:]
        for pid in range(len(fresh._paths)):
            arr = self._postings.get(pid, _NO_POSITIONS)
            merged = touched.get(pid)
            cut = bisect_left(arr, start)
            if merged is None and cut == len(arr):
                if pid < len(self._paths):
                    fresh._postings[pid] = arr  # untouched: share
                    projection = self._projections.get(pid)
                    if projection is not None:
                        fresh._projections[pid] = projection
                else:
                    fresh._postings[pid] = array("q")
                continue
            spliced = arr[:cut]
            if merged is not None:
                spliced += merged
            spliced += array("q", (p + length for p in arr[cut:]))
            fresh._postings[pid] = spliced
            if merged is None:
                # The path gained no postings; its projection only
                # slides (monotone remap keeps values and tie order).
                projection = self._projections.get(pid)
                if projection is not None:
                    fresh._projections[pid] = projection.shifted(start, length)
        fresh._doc_bounds = (self._doc_bounds[:key]
                             + [(start, start + length)]
                             + [(s + length, e + length)
                                for s, e in self._doc_bounds[key:]])
        if len(fresh._paths) == len(self._paths):
            # The distinct-path table is unchanged, so every memoized
            # pattern -> path-ids answer still holds.
            fresh._pattern_paths = dict(self._pattern_paths)
            fresh._pattern_paths_strict = dict(self._pattern_paths_strict)
        return fresh

    def _with_document_removed(self, document: "DocumentDelta") -> "ColumnarStore":
        """Retract one document's slab in a single filtered pass (later
        doc keys slide down by one, matching the store's renumbering)."""
        key = document.doc_key
        if not 0 <= key < len(self._doc_bounds):
            raise ValueError(f"remove delta doc key {key} out of range")
        start, end = self._doc_bounds[key]
        length = end - start

        fresh = ColumnarStore()
        fresh._paths = list(self._paths)
        fresh._path_index = dict(self._path_index)
        fresh.pre = array("q", range(len(self.pre) - length))
        fresh.post = (self.post[:start]
                      + array("q", (v - length for v in self.post[end:])))
        fresh.parent = (self.parent[:start]
                        + array("q", (v - length if v >= 0 else v
                                      for v in self.parent[end:])))
        fresh.kind = self.kind[:start] + self.kind[end:]
        fresh.path_id = self.path_id[:start] + self.path_id[end:]
        fresh.sub = (self.sub[:start]
                     + array("q", (v - length for v in self.sub[end:])))
        fresh.values = self.values[:start] + self.values[end:]
        fresh._nodes = self._nodes[:start] + self._nodes[end:]
        for pid, arr in self._postings.items():
            cut = bisect_left(arr, start)
            if cut == len(arr):
                fresh._postings[pid] = arr  # entirely before the slab: share
                projection = self._projections.get(pid)
                if projection is not None:
                    fresh._projections[pid] = projection
                continue
            tail = bisect_left(arr, end)
            fresh._postings[pid] = (arr[:cut]
                                    + array("q", (p - length
                                                  for p in arr[tail:])))
            if cut == tail:
                # No posting of this path was retracted; the projection
                # only slides (monotone remap keeps values and ties).
                projection = self._projections.get(pid)
                if projection is not None:
                    fresh._projections[pid] = projection.shifted(end, -length)
        fresh._doc_bounds = (self._doc_bounds[:key]
                             + [(s - length, e - length)
                                for s, e in self._doc_bounds[key + 1:]])
        # Paths are never retired from the table, so pattern memos
        # (which are derived from the table alone) always carry over.
        fresh._pattern_paths = dict(self._pattern_paths)
        fresh._pattern_paths_strict = dict(self._pattern_paths_strict)
        return fresh

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.pre)

    @property
    def document_count(self) -> int:
        return len(self._doc_bounds)

    @property
    def distinct_paths(self) -> List[str]:
        """The distinct simple paths ever seen, sorted."""
        return sorted(self._paths)

    @property
    def nbytes(self) -> float:
        """The encoding's byte footprint: columns + postings + values +
        value projections.

        Deterministically equal to ``DatabaseStatistics.columnar_bytes``
        for the same data -- Sigma(len) over the postings is exactly the
        node count, the values column stores the same normalized values
        the synopsis charges ``total_value_bytes`` for, and the
        projection charge is an accounting *model* independent of which
        projections are currently built: one permutation slot per node
        (the value-sorted order) plus one DOUBLE slot per castable entry
        of the values column (the synopsis's ``numeric_count``
        predicate), so lazy builds never make the reported size drift.
        """
        column_bytes = sum(column.itemsize * len(column) for column in
                           (self.pre, self.post, self.parent, self.kind,
                            self.path_id, self.sub))
        posting_bytes = sum(arr.itemsize * len(arr)
                            for arr in self._postings.values())
        value_bytes = sum(len(value) for value in self.values)
        projection_bytes = (array("q").itemsize * len(self.pre)
                            + NUMERIC_PROJECTION_ENTRY_BYTES
                            * sum(1 for value in self.values
                                  if _castable(value)))
        return float(column_bytes + posting_bytes + value_bytes
                     + projection_bytes)

    def node_at(self, position: int) -> XmlNode:
        return self._nodes[position]

    def canonical_state(self) -> Tuple:
        """A value-comparable snapshot for the maintenance-equivalence
        tests (delta-maintained stores vs. full rebuilds)."""
        return (
            tuple(self.pre), tuple(self.post), tuple(self.parent),
            tuple(self.kind), tuple(self.sub),
            tuple(self._paths[pid] for pid in self.path_id),
            tuple(self.values),
            tuple(node.node_id for node in self._nodes),
            tuple(self._doc_bounds),
            {self._paths[pid]: tuple(arr)
             for pid, arr in self._postings.items() if len(arr)},
        )

    def describe(self) -> str:
        return (f"columnar store: {self.document_count} document(s), "
                f"{self.node_count} nodes, {len(self._paths)} paths, "
                f"{self.nbytes:.0f} bytes")

    # ------------------------------------------------------------------
    # Pattern lookups (the executor's hot path)
    # ------------------------------------------------------------------
    def _paths_for(self, pattern: PathPattern, strict: bool) -> Tuple[int, ...]:
        memo = self._pattern_paths_strict if strict else self._pattern_paths
        ids = memo.get(pattern)
        if ids is None:
            match = pattern.matches if strict else pattern.matches_evaluator
            ids = tuple(pid for pid, path in enumerate(self._paths)
                        if match(path))
            memo[pattern] = ids
        return ids

    def paths_matching(self, pattern: PathPattern) -> Tuple[str, ...]:
        """Distinct paths matched under evaluator semantics (memoized)."""
        return tuple(self._paths[pid]
                     for pid in self._paths_for(pattern, strict=False))

    def _doc_slice(self, doc_id: Optional[int]) -> Optional[Tuple[int, int]]:
        if doc_id is None:
            return (0, len(self.pre))
        if not 0 <= doc_id < len(self._doc_bounds):
            return None
        return self._doc_bounds[doc_id]

    def _positions_in(self, pid: int, lo: int, hi: int) -> Sequence[int]:
        """A path's postings restricted to the pre interval [lo, hi)."""
        arr = self._postings[pid]
        if lo == 0 and hi == len(self.pre):
            return arr
        return arr[bisect_left(arr, lo):bisect_left(arr, hi)]

    def nodes_for_pattern(self, pattern: PathPattern,
                          doc_id: Optional[int] = None,
                          ordered: bool = False) -> List[XmlNode]:
        """Nodes matched by ``pattern`` under the interpreter's exact
        descendant-or-self semantics (in one document, or all).

        Position order is document order, so ``ordered=True`` is a merge
        of pre-sorted postings, never a tree walk.  The returned list
        must be treated as read-only.
        """
        ids = self._paths_for(pattern, strict=False)
        if not ids:
            return _NO_NODES
        bounds = self._doc_slice(doc_id)
        if bounds is None:
            return _NO_NODES
        lo, hi = bounds
        if lo == hi:
            return _NO_NODES
        nodes = self._nodes
        if len(ids) == 1:
            return [nodes[p] for p in self._positions_in(ids[0], lo, hi)]
        if ordered:
            positions: List[int] = []
            for pid in ids:
                positions.extend(self._positions_in(pid, lo, hi))
            positions.sort()
            return [nodes[p] for p in positions]
        merged: List[XmlNode] = []
        for pid in ids:
            segment = self._positions_in(pid, lo, hi)
            if segment:
                merged.extend(nodes[p] for p in segment)
        return merged

    def has_match(self, pattern: PathPattern,
                  doc_id: Optional[int] = None) -> bool:
        """Existence test: does any node match (in ``doc_id``)?"""
        ids = self._paths_for(pattern, strict=False)
        if not ids:
            return False
        bounds = self._doc_slice(doc_id)
        if bounds is None:
            return False
        lo, hi = bounds
        return any(len(self._positions_in(pid, lo, hi)) for pid in ids)

    def iter_strict_pattern_nodes(self, pattern: PathPattern
                                  ) -> Iterator[Tuple[int, XmlNode]]:
        """Yield ``(doc key, node)`` for every node whose path the
        pattern matches under *strict* index-pattern semantics, grouped
        per path in postings order -- what physical index builds consume
        (index content keeps the strict pattern language)."""
        bounds = self._doc_bounds
        for pid in self._paths_for(pattern, strict=True):
            doc = 0
            for position in self._postings[pid]:
                while position >= bounds[doc][1]:
                    doc += 1
                yield doc, self._nodes[position]

    # ------------------------------------------------------------------
    # Vectorized value predicates (the set-at-a-time engine)
    # ------------------------------------------------------------------
    def _projection_for(self, pid: int) -> _ValueProjection:
        projection = self._projections.get(pid)
        if projection is None:
            projection = _build_projection(self._nodes, self._postings[pid])
            self._projections[pid] = projection
            global_registry().counter("columnar.projection.builds").inc()
        return projection

    def _matched_segments(self, pid: int, op: Optional[BinaryOp],
                          value: Optional[Union[str, float]]
                          ) -> Iterator[Sequence[int]]:
        """Position runs on path ``pid`` whose node satisfies
        ``op value`` -- two bisects over the value-sorted projection.

        The comparison semantics replicate the legacy per-node path
        (``executor._compare_node``) exactly: a float literal compares
        against the DOUBLE cast (non-castable nodes fail every operator,
        ``!=`` included), a string literal compares lexicographically
        against the normalized typed value.
        """
        if op is None or value is None:
            yield self._postings[pid]  # pure existence test
            return
        projection = self._projection_for(pid)
        if isinstance(value, float):
            order: Sequence[int] = projection.norder
            keys: Sequence = projection.nvalues
            if value != value:  # NaN literal: only != holds, castables only
                if op is BinaryOp.NE:
                    yield order
                    yield projection.nanorder
                return
        else:
            order = projection.sorder
            keys = projection.svalues
        if op is BinaryOp.EQ:
            yield order[bisect_left(keys, value):bisect_right(keys, value)]
        elif op is BinaryOp.NE:
            yield order[:bisect_left(keys, value)]
            yield order[bisect_right(keys, value):]
            if isinstance(value, float):
                yield projection.nanorder  # NaN != anything
        elif op is BinaryOp.LT:
            yield order[:bisect_left(keys, value)]
        elif op is BinaryOp.LE:
            yield order[:bisect_right(keys, value)]
        elif op is BinaryOp.GT:
            yield order[bisect_right(keys, value):]
        elif op is BinaryOp.GE:
            yield order[bisect_left(keys, value):]

    def _doc_start_index(self) -> array:
        starts = self._doc_starts
        if starts is None:
            starts = array("q", (start for start, _ in self._doc_bounds))
            self._doc_starts = starts
        return starts

    def match_positions(self, pattern: PathPattern, op: Optional[BinaryOp] = None,
                        value: Optional[Union[str, float]] = None,
                        doc_id: Optional[int] = None) -> List[int]:
        """Ascending pre positions whose node matches ``pattern`` (under
        the interpreter's exact descendant-or-self semantics) *and*
        satisfies the comparison ``op value`` -- no node objects are
        touched; only the sorted projections and two bisects per path.
        """
        bounds = self._doc_slice(doc_id)
        if bounds is None:
            return []
        lo, hi = bounds
        if lo == hi:
            return []
        unrestricted = lo == 0 and hi == len(self.pre)
        positions: List[int] = []
        for pid in self._paths_for(pattern, strict=False):
            for segment in self._matched_segments(pid, op, value):
                if unrestricted:
                    positions.extend(segment)
                else:
                    positions.extend(p for p in segment if lo <= p < hi)
        positions.sort()
        return positions

    def matching_documents(self, pattern: PathPattern,
                           op: Optional[BinaryOp] = None,
                           value: Optional[Union[str, float]] = None
                           ) -> Set[int]:
        """Doc keys of every document holding at least one node that
        matches ``pattern`` and satisfies ``op value``.

        O(matching postings): each matched position maps to its document
        by one bisect over the slab starts.  This is the executor's
        set-at-a-time scan primitive -- one call per predicate per
        collection, intersected across predicates.
        """
        docs: Set[int] = set()
        starts = self._doc_start_index()
        for pid in self._paths_for(pattern, strict=False):
            for segment in self._matched_segments(pid, op, value):
                for position in segment:
                    docs.add(bisect_right(starts, position) - 1)
        return docs

    def documents_with_match(self, pattern: PathPattern) -> Set[int]:
        """Doc keys of the documents where ``pattern`` matches at all
        (the navigation-only counterpart of :meth:`matching_documents`).

        Skip-scans each path's postings document by document -- after
        the first hit in a document the walk bisects straight past the
        rest of its slab -- so the cost is O(matching documents x log
        postings), not O(postings).
        """
        docs: Set[int] = set()
        starts = self._doc_start_index()
        bounds = self._doc_bounds
        for pid in self._paths_for(pattern, strict=False):
            arr = self._postings[pid]
            index = 0
            total = len(arr)
            while index < total:
                doc = bisect_right(starts, arr[index]) - 1
                docs.add(doc)
                index = bisect_left(arr, bounds[doc][1], index + 1)
        return docs

    def values_for_pattern(self, pattern: PathPattern,
                           doc_id: Optional[int] = None,
                           ordered: bool = False) -> List[str]:
        """The values-column entries of the nodes ``pattern`` matches --
        the same nodes :meth:`nodes_for_pattern` returns, in the same
        order, but served straight from the flat column (zero node-object
        hops).  Value-only consumers (``ExecutionResult
        .extracted_values``) read this; each entry is byte-identical to
        ``normalized_node_value()`` of the corresponding node by
        construction.
        """
        ids = self._paths_for(pattern, strict=False)
        if not ids:
            return _NO_VALUES
        bounds = self._doc_slice(doc_id)
        if bounds is None:
            return _NO_VALUES
        lo, hi = bounds
        if lo == hi:
            return _NO_VALUES
        values = self.values
        if len(ids) == 1:
            return [values[p] for p in self._positions_in(ids[0], lo, hi)]
        if ordered:
            positions: List[int] = []
            for pid in ids:
                positions.extend(self._positions_in(pid, lo, hi))
            positions.sort()
            return [values[p] for p in positions]
        merged: List[str] = []
        for pid in ids:
            segment = self._positions_in(pid, lo, hi)
            if segment:
                merged.extend(values[p] for p in segment)
        return merged

    # ------------------------------------------------------------------
    # The axis engine
    # ------------------------------------------------------------------
    def descendants(self, pre_lo: int, pre_hi: int,
                    pid: Optional[int] = None) -> Sequence[int]:
        """Positions inside the pre interval ``[pre_lo, pre_hi)`` -- the
        descendant axis as interval containment.  With ``pid`` the
        result is restricted to one path's postings via bisect."""
        if pid is not None:
            return self._positions_in(pid, pre_lo, pre_hi)
        return range(pre_lo, pre_hi)

    def descendant_interval(self, position: int) -> Tuple[int, int]:
        """The pre interval holding the subtree below ``position``."""
        return position + 1, self.sub[position]

    def attribute_positions(self, position: int) -> List[int]:
        """An element's attributes: the contiguous attribute run that
        directly follows it."""
        out: List[int] = []
        walk = position + 1
        end = self.sub[position]
        kind = self.kind
        while walk < end and kind[walk] == KIND_ATTRIBUTE:
            out.append(walk)
            walk += 1
        return out

    def child_element_positions(self, position: int) -> List[int]:
        """An element's child elements: hop sibling-to-sibling via
        ``sub`` after skipping the attribute run."""
        out: List[int] = []
        walk = position + 1
        end = self.sub[position]
        kind = self.kind
        sub = self.sub
        while walk < end and kind[walk] == KIND_ATTRIBUTE:
            walk += 1
        while walk < end:
            out.append(walk)
            walk = sub[walk]
        return out

    def _label_candidates(self, step: PatternStep, lo: int, hi: int
                          ) -> Sequence[int]:
        """Ascending positions whose node test matches ``step``'s label,
        restricted to [lo, hi) (memoized per label)."""
        label = step.label
        arr = self._label_positions.get(label)
        if arr is None:
            if label == "*":
                arr = array("q", (p for p in range(len(self.kind))
                                  if self.kind[p] == KIND_ELEMENT))
            elif label == "@*":
                arr = array("q", (p for p in range(len(self.kind))
                                  if self.kind[p] == KIND_ATTRIBUTE))
            else:
                merged: List[int] = []
                for pid, path in enumerate(self._paths):
                    if path.rsplit("/", 1)[-1] == label:
                        merged.extend(self._postings[pid])
                merged.sort()
                arr = array("q", merged)
            self._label_positions[label] = arr
        if lo == 0 and hi == len(self.pre):
            return arr
        return arr[bisect_left(arr, lo):bisect_left(arr, hi)]

    def _covered(self, candidates: Sequence[int],
                 contexts: Sequence[int]) -> List[int]:
        """Filter ascending ``candidates`` down to those inside the
        subtree interval ``[c, sub[c])`` of some ascending context --
        descendant-or-self containment by a single merge scan (the
        running prefix max of ``sub`` makes nested intervals cheap)."""
        out: List[int] = []
        sub = self.sub
        max_sub = 0
        index = 0
        total = len(contexts)
        for candidate in candidates:
            while index < total and contexts[index] <= candidate:
                context_sub = sub[contexts[index]]
                if context_sub > max_sub:
                    max_sub = context_sub
                index += 1
            if candidate < max_sub:
                out.append(candidate)
        return out

    def select_positions(self, pattern: PathPattern,
                         doc_id: Optional[int] = None) -> List[int]:
        """Step-wise exact evaluation of a linear pattern on the axis
        engine (descendant-or-self semantics, ascending positions).

        This is the structural counterpart of
        :meth:`nodes_for_pattern`'s path-determinism shortcut; the two
        must agree, which the byte-identity tests assert.
        """
        bounds = self._doc_slice(doc_id)
        if bounds is None:
            return []
        lo, hi = bounds
        if lo == hi:
            return []
        contexts: Optional[Sequence[int]] = None
        parent = self.parent
        for number, step in enumerate(pattern.steps):
            candidates = self._label_candidates(step, lo, hi)
            result: Sequence[int]
            if number == 0:
                if step.is_attribute and not step.descendant:
                    return []  # documents carry no attributes
                if step.descendant:
                    # Everything under the virtual document root(s); the
                    # document node itself is not an element, so there
                    # is no "self" at the first step.
                    result = candidates
                else:
                    result = [q for q in candidates if parent[q] == -1]
            elif step.descendant:
                result = self._covered(candidates, contexts)
            else:
                context_set = set(contexts)
                result = [q for q in candidates if parent[q] in context_set]
            if not result:
                return []
            contexts = result
        return list(contexts)


@builder
def build_columnar_store(documents: Iterable[DocumentNode]) -> "ColumnarStore":
    """Build a :class:`ColumnarStore` over ``documents`` in one pass
    (documents are keyed by their position, the collection's key)."""
    store = ColumnarStore()
    for position, document in enumerate(documents):
        store.add_document(document, doc_key=position)
    return store
