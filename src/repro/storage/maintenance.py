"""Delta-propagation maintenance: document change as a first-class delta.

Before this module existed, every document add/remove was a teardown:
the collection dropped its path summary and statistics, physical indexes
were rebuilt from scratch, and the optimizer plan cache and the
advisor's evaluator discarded all state whenever ``data_signature()``
moved.  The paper's advisor targets *evolving* databases, so data change
is now modelled as a delta that flows through the stack instead of a
global cache flush:

* :class:`DocumentDelta` -- one document's per-path node groups, computed
  in the same O(nodes) pass shape the summary build uses.  It is the
  unit every consumer understands: the summary merges or retracts it,
  the statistics accumulator adjusts its synopses from it, and physical
  indexes derive the entries to insert or delete from it.
* :class:`CollectionDelta` -- a :class:`DocumentDelta` plus the operation
  (add/remove) and the collection version it produced.  Removals imply a
  *document-key shift*: the store reassigns the ids of later documents,
  so consumers retract the removed document's groups and slide every key
  above it down by one.
* :class:`DeltaLog` -- a bounded per-collection journal so detached
  consumers (the executor's materialized indexes) can catch up from the
  version they last saw; when the log has been trimmed or broken by an
  in-place edit (:meth:`DeltaLog.mark_discontinuity`), ``since`` returns
  ``None`` and the consumer falls back to a full rebuild.
* :class:`DataChangeTracker` / :class:`DataChange` -- the
  database-level view used by the optimizer's plan cache and the
  advisor's :class:`~repro.advisor.benefit.ConfigurationEvaluator`: it
  diffs per-collection statistics snapshots between polls and reports
  *which collections and which distinct paths actually changed*, so
  cached plans and per-query costings are evicted selectively instead of
  wholesale.

Exactness contract: with the collection-scoped cost model (the
default) a cached plan or costing depends only on the synopses of its
*routing set* -- the collections the query's patterns can match -- so
it is stale exactly when a routed collection changed or a changed path
could move the routing set itself (:meth:`DataChange.stales_routed_query`);
a change confined to other collections leaves it byte-exact even when
the whole-database aggregates moved.  Under the legacy global model
(``use_collection_costing=False``) every query is priced against
whole-database aggregates, so whenever those move, every cached cost
is stale and :attr:`DataChange.aggregates_changed` forces a full
re-cost -- the fine-grained path then only retains state that is
provably unchanged (pattern-relevance maps, plans and costings whose
statistics inputs did not move: signature churn from RUNSTATS,
empty-collection DDL, or net-zero batches).  Derived state maintained
through deltas, by contrast, is byte-identical to a rebuild by
construction, which the randomized equivalence tests assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.contracts import cache_contract, snapshot_contract
from repro.xmldb.nodes import DocumentNode, XmlNode
from repro.xpath.patterns import PathPattern

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.storage.document_store import XmlDatabase
    from repro.storage.statistics import DatabaseStatistics
    from repro.xquery.model import NormalizedQuery

#: Default number of deltas a collection journal retains.  Consumers
#: further behind than this rebuild instead of catching up; the cap
#: bounds the memory pinned by node references in retained deltas.
DELTA_LOG_CAPACITY = 64

ADD = "add"
REMOVE = "remove"


@snapshot_contract()
@dataclass(frozen=True)
class DocumentDelta:
    """One document's contribution to a collection's derived state.

    ``path_groups`` maps each distinct simple path in the document to
    its element/attribute nodes in document order -- exactly the groups
    :meth:`~repro.storage.path_summary.PathSummary.add_document` would
    have produced for the document, captured once and shared by every
    consumer (summary merge, statistics adjustment, index maintenance).
    """

    doc_key: int
    path_groups: Mapping[str, Tuple[XmlNode, ...]]
    element_count: int
    attribute_count: int

    @property
    def node_count(self) -> int:
        return self.element_count + self.attribute_count


@snapshot_contract()
@dataclass(frozen=True)
class CollectionDelta:
    """One add/remove operation on a collection, as a propagatable delta.

    ``version`` is the collection's data version *after* the operation.
    For ``kind == REMOVE``, consumers must also shift every document key
    greater than ``document.doc_key`` down by one (the store reassigns
    the ids of later documents on removal).
    """

    collection: str
    kind: str
    version: int
    document: DocumentDelta

    @property
    def is_add(self) -> bool:
        return self.kind == ADD

    @property
    def is_remove(self) -> bool:
        return self.kind == REMOVE


def compute_document_delta(document: DocumentNode,
                           doc_key: Optional[int] = None) -> DocumentDelta:
    """Capture ``document``'s per-path node groups in one O(nodes) pass.

    This is the same traversal the path summary's ``add_document``
    performs; capturing it as a delta lets the summary, the statistics
    accumulator, and every physical index consume one pass instead of
    re-walking the tree each.
    """
    key = document.doc_id if doc_key is None else doc_key
    groups: Dict[str, List[XmlNode]] = {}
    elements = 0
    attributes = 0
    for element in document.descendant_elements():
        groups.setdefault(element.simple_path(), []).append(element)
        elements += 1
        for attribute in element.attributes:
            groups.setdefault(attribute.simple_path(), []).append(attribute)
            attributes += 1
    return DocumentDelta(
        doc_key=key,
        path_groups={path: tuple(nodes) for path, nodes in groups.items()},
        element_count=elements,
        attribute_count=attributes,
    )


class DeltaLog:
    """A bounded journal of :class:`CollectionDelta` for one collection.

    ``since(version)`` answers "what happened after ``version``?" for
    consumers holding derived state (the executor's materialized
    indexes).  The log is *continuous* from :attr:`floor`: requests
    below the floor (trimmed history, or an in-place edit recorded via
    :meth:`mark_discontinuity`) return ``None``, which consumers treat
    as "rebuild from scratch".
    """

    def __init__(self, capacity: int = DELTA_LOG_CAPACITY,
                 floor: int = 0) -> None:
        self._capacity = max(1, capacity)
        self._deltas: Deque[CollectionDelta] = deque()
        self._floor = floor

    @property
    def floor(self) -> int:
        """The earliest version catch-up can start from."""
        return self._floor

    def __len__(self) -> int:
        return len(self._deltas)

    def record(self, delta: CollectionDelta) -> None:
        self._deltas.append(delta)
        while len(self._deltas) > self._capacity:
            dropped = self._deltas.popleft()
            self._floor = dropped.version

    def mark_discontinuity(self, version: int) -> None:
        """Declare history before ``version`` unreplayable (in-place edits,
        bulk invalidation): catch-up is only possible from ``version`` on."""
        self._deltas.clear()
        self._floor = version

    def since(self, version: int) -> Optional[List[CollectionDelta]]:
        """The deltas to replay for a consumer that last saw ``version``,
        oldest first, or ``None`` when the journal cannot bridge the gap."""
        if version < self._floor:
            return None
        return [delta for delta in self._deltas if delta.version > version]


# ----------------------------------------------------------------------
# Database-level change tracking (optimizer / advisor invalidation)
# ----------------------------------------------------------------------

#: Whole-database aggregates every query cost depends on (the cost
#: model's data pages, node counts and document counts all derive from
#: these).  When they move, no cached cost is trustworthy.
_Aggregates = Tuple[int, int, int, int]


@lru_cache(maxsize=4096)
def pattern_for_key(pattern_text: str) -> PathPattern:
    """Parse an index key's pattern text back into a pattern (memoized).

    Index keys are ``(pattern text, value type)`` tuples; the fine-
    grained invalidation paths need the pattern objects back to test
    them against changed paths.
    """
    return PathPattern.parse(pattern_text)


@cache_contract(memos={"_pattern_memo": {"policy": "object-keyed"}})
@dataclass
class DataChange:
    """What actually changed between two :class:`DataChangeTracker` polls."""

    changed_collections: FrozenSet[str]
    #: Distinct simple paths whose per-path statistics changed in any
    #: changed collection (including paths that appeared or vanished).
    changed_paths: FrozenSet[str]
    #: True when the whole-database aggregates moved -- every cached
    #: cost is then stale (the cost model is global).
    aggregates_changed: bool
    #: Merged statistics before/after the change (for size-estimate
    #: carry-over); ``None`` when the tracker did not capture them.
    old_statistics: Optional["DatabaseStatistics"] = None
    new_statistics: Optional["DatabaseStatistics"] = None
    _pattern_memo: Dict[PathPattern, bool] = field(default_factory=dict,
                                                   repr=False, compare=False)

    def affects_pattern(self, pattern: PathPattern) -> bool:
        """Does ``pattern`` match any changed path?  (Memoized: the same
        predicate and index patterns are probed for many cache entries.)"""
        cached = self._pattern_memo.get(pattern)
        if cached is None:
            cached = any(pattern.matches(path) for path in self.changed_paths)
            self._pattern_memo[pattern] = cached
        return cached

    def affects_index_key(self, key: Tuple[str, str]) -> bool:
        """Does the index identified by ``key`` see different statistics?"""
        return self.affects_pattern(pattern_for_key(key[0]))

    def affects_query(self, query: "NormalizedQuery") -> bool:
        """Could ``query``'s cost have changed (aggregates aside)?

        True when any of its predicate patterns -- or, for updates, any
        touched pattern -- matches a changed path.  Extraction paths
        only enter costs as a count, so they cannot make a query stale.
        """
        if self.aggregates_changed:
            return True
        for predicate in query.predicates:
            if self.affects_pattern(predicate.pattern):
                return True
        if query.is_update:
            for touched in query.touched_patterns:
                if self.affects_pattern(touched):
                    return True
        return False

    def affects_routing(self, query: "NormalizedQuery") -> bool:
        """Could this change have moved ``query``'s structural routing
        set, or the per-path statistics its routed cost reads?

        Unlike :meth:`affects_query` there is no whole-database
        aggregates shortcut: with collection-scoped costing a query's
        cost depends only on the synopses of its routed collections.
        A collection *enters* a routing set only by gaining a path one
        of the query's routing patterns matches -- which is exactly a
        changed path this test sees.
        """
        return any(self.affects_pattern(pattern)
                   for pattern in query.routing_patterns())

    def stales_routed_query(self, query: "NormalizedQuery",
                            routing: Optional[Tuple[str, ...]]) -> bool:
        """Is a cached plan/costing for ``query``, computed over the
        routing set ``routing``, stale after this change?

        ``None`` and the empty set were priced against the whole
        database, so they fall back to the aggregates-guarded
        :meth:`affects_query` (plus the routing-membership check).  A
        genuinely routed entry is stale only when a routed collection
        changed, or a changed path could alter the routing set itself.
        """
        if not routing:
            return self.affects_query(query) or self.affects_routing(query)
        if self.changed_collections & frozenset(routing):
            return True
        return self.affects_routing(query)


class DataChangeTracker:
    """Diffs a database's per-collection statistics between polls.

    Consumers (the optimizer's plan cache, the advisor's evaluator) hold
    one tracker each; :meth:`poll` returns ``None`` when nothing moved,
    or a :class:`DataChange` describing exactly which collections,
    distinct paths and aggregates did.  Polling advances the tracker's
    snapshot, so each change is reported once per consumer.

    Statistics snapshots are immutable (collections rebuild them rather
    than mutating), so holding references across polls is safe.
    """

    def __init__(self, database: "XmlDatabase") -> None:
        self._database = database
        self._signature = database.data_signature()
        self._state = self._capture_state()
        self._merged = database.statistics

    def _capture_state(self) -> Dict[str, Tuple[int, "DatabaseStatistics"]]:
        return {collection.name: (collection.version, collection.statistics)
                for collection in self._database.collections}

    def poll(self) -> Optional[DataChange]:
        """Report (and absorb) everything that changed since the last poll."""
        signature = self._database.data_signature()
        if signature == self._signature:
            return None
        old_state = self._state
        old_merged = self._merged
        new_state = self._capture_state()

        changed: List[str] = []
        for name, (version, _stats) in new_state.items():
            old = old_state.get(name)
            if old is None or old[0] != version:
                changed.append(name)
        changed.extend(name for name in old_state if name not in new_state)

        changed_paths: set = set()
        for name in changed:
            old_stats = old_state.get(name)
            new_stats = new_state.get(name)
            changed_paths.update(_diff_paths(
                old_stats[1] if old_stats else None,
                new_stats[1] if new_stats else None))

        aggregates_changed = (self._aggregates(old_state)
                              != self._aggregates(new_state))

        self._signature = signature
        self._state = new_state
        self._merged = self._database.statistics
        return DataChange(changed_collections=frozenset(changed),
                          changed_paths=frozenset(changed_paths),
                          aggregates_changed=aggregates_changed,
                          old_statistics=old_merged,
                          new_statistics=self._merged)

    @staticmethod
    def _aggregates(state: Dict[str, Tuple[int, "DatabaseStatistics"]]
                    ) -> _Aggregates:
        documents = nodes = elements = text_bytes = 0
        for _version, stats in state.values():
            documents += stats.document_count
            nodes += stats.total_node_count
            elements += stats.total_element_count
            text_bytes += stats.total_text_bytes
        return documents, nodes, elements, text_bytes


def _diff_paths(old: Optional["DatabaseStatistics"],
                new: Optional["DatabaseStatistics"]) -> List[str]:
    """Paths whose statistics differ between two collection snapshots."""
    if old is None:
        return list(new.path_stats) if new is not None else []
    if new is None:
        return list(old.path_stats)
    changed = [path for path in old.path_stats if path not in new.path_stats]
    for path, stat in new.path_stats.items():
        if old.path_stats.get(path) != stat:
            changed.append(path)
    return changed
