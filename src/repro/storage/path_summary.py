"""Structural path summary: the per-collection path index of the engine.

A :class:`PathSummary` maps every distinct rooted *simple path* that
occurs in a set of documents (``/site/regions/africa/item``,
``/site/people/person/@id``, ...) to the element/attribute nodes that
carry it, grouped per document.  It is built in a single O(nodes) pass
and is exactly the structural synopsis the paper's "Cost estimation
using DB statistics" component assumes: statistics collection
(:func:`repro.storage.statistics.collect_statistics_from_summary`),
physical index materialization
(:func:`repro.index.physical.build_physical_index`) and the executor's
document-scan path all read it instead of re-walking node trees.

The summary answers two kinds of questions:

* *path lookups* -- the nodes with one concrete simple path, optionally
  restricted to one document;
* *pattern lookups* -- the nodes matched by a linear
  :class:`~repro.xpath.patterns.PathPattern` (wildcards and ``//``
  allowed).  Pattern-to-path matching is memoized per summary, so a
  workload that probes the same patterns over many documents pays the
  NFA match once.

Invalidation contract: a summary is immutable once built.  It is cached
on :class:`~repro.storage.document_store.XmlCollection`; whenever a
document is added or removed the collection either *replaces* it with
:meth:`PathSummary.apply_delta` -- a new snapshot that merges/retracts
one document's per-path node groups and structurally shares every
untouched per-path table with its predecessor -- or (with incremental
maintenance disabled) drops it for a full rebuild.  Either way consumers
must re-fetch ``collection.path_summary`` instead of holding one across
updates.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.contracts import builder, cache_contract, snapshot_contract
from repro.xmldb.nodes import DocumentNode, XmlNode
from repro.xpath.patterns import PathPattern

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.storage.maintenance import CollectionDelta, DocumentDelta

#: Shared empty list returned by lookups that match nothing.  Callers
#: must treat lookup results as read-only.
_NO_NODES: List[XmlNode] = []


@snapshot_contract(builders=("add_document", "_with_document_added",
                             "_with_document_removed"),
                   mutators=("add_document",),
                   memo_attrs=("_pattern_paths",))
@cache_contract(memos={"_pattern_paths": {"policy": "object-keyed"}})
class PathSummary:
    """Maps each distinct rooted simple path to its nodes, per document.

    Instances are built with :func:`build_path_summary` (or by repeated
    :meth:`add_document` calls) and are then treated as immutable.
    """

    def __init__(self) -> None:
        #: path -> doc key -> nodes with that path, in document order.
        self._doc_nodes: Dict[str, Dict[int, List[XmlNode]]] = {}
        #: Memo of pattern -> tuple of matching distinct paths.
        self._pattern_paths: Dict[PathPattern, Tuple[str, ...]] = {}
        self.document_count = 0
        self.total_element_count = 0
        self.total_attribute_count = 0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add_document(self, document: DocumentNode,
                     doc_key: Optional[int] = None) -> None:
        """Fold one document into the summary (one pass over its nodes).

        ``doc_key`` defaults to ``document.doc_id`` (the key the executor
        looks nodes up by); callers summarizing documents that do not
        live in a collection pass an explicit key.
        """
        key = document.doc_id if doc_key is None else doc_key
        self.document_count += 1
        doc_nodes = self._doc_nodes
        for element in document.descendant_elements():
            self._add(doc_nodes, element.simple_path(), key, element)
            self.total_element_count += 1
            for attribute in element.attributes:
                self._add(doc_nodes, attribute.simple_path(), key, attribute)
                self.total_attribute_count += 1
        self._pattern_paths.clear()

    @staticmethod
    def _add(doc_nodes: Dict[str, Dict[int, List[XmlNode]]], path: str,
             key: int, node: XmlNode) -> None:
        per_doc = doc_nodes.get(path)
        if per_doc is None:
            per_doc = doc_nodes[path] = {}
        nodes = per_doc.get(key)
        if nodes is None:
            nodes = per_doc[key] = []
        nodes.append(node)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, delta: "CollectionDelta") -> "PathSummary":
        """A new summary with ``delta`` merged in (this one is unchanged).

        The snapshot contract stays intact: the result is a *different*
        summary object that structurally shares the per-path tables the
        delta does not touch, so holders of the old summary keep an
        exact pre-change view while the collection swaps in the new one.
        The result is byte-identical (same paths, same per-document node
        groups, same ordering) to rebuilding from the post-change
        documents, which is what the maintenance equivalence tests
        assert.
        """
        if delta.is_add:
            return self._with_document_added(delta.document)
        return self._with_document_removed(delta.document)

    def _with_document_added(self, document: "DocumentDelta") -> "PathSummary":
        fresh = PathSummary()
        doc_nodes = dict(self._doc_nodes)  # share untouched per-path tables
        new_paths = False
        for path, nodes in document.path_groups.items():
            per_doc = doc_nodes.get(path)
            if per_doc is None:
                doc_nodes[path] = {document.doc_key: list(nodes)}
                new_paths = True
            else:
                per_doc = dict(per_doc)  # copy-on-write: old summary keeps its view
                per_doc[document.doc_key] = list(nodes)
                doc_nodes[path] = per_doc
        fresh._doc_nodes = doc_nodes
        fresh.document_count = self.document_count + 1
        fresh.total_element_count = self.total_element_count + document.element_count
        fresh.total_attribute_count = (self.total_attribute_count
                                       + document.attribute_count)
        if not new_paths:
            # The distinct-path set is unchanged, so every memoized
            # pattern -> paths answer still holds.
            fresh._pattern_paths = dict(self._pattern_paths)
        return fresh

    def _with_document_removed(self, document: "DocumentDelta") -> "PathSummary":
        """Retract one document and slide the keys above it down by one
        (the store reassigns the ids of later documents on removal)."""
        removed_key = document.doc_key
        fresh = PathSummary()
        doc_nodes: Dict[str, Dict[int, List[XmlNode]]] = {}
        dropped_paths = False
        for path, per_doc in self._doc_nodes.items():
            # Keys are inserted in ascending document order, so the last
            # key is the maximum: per-path tables that only reference
            # earlier documents are shared untouched.
            if next(reversed(per_doc)) < removed_key:
                doc_nodes[path] = per_doc
                continue
            rekeyed = {(key if key < removed_key else key - 1): nodes
                       for key, nodes in per_doc.items() if key != removed_key}
            if rekeyed:
                doc_nodes[path] = rekeyed
            else:
                dropped_paths = True
        fresh._doc_nodes = doc_nodes
        fresh.document_count = self.document_count - 1
        fresh.total_element_count = self.total_element_count - document.element_count
        fresh.total_attribute_count = (self.total_attribute_count
                                       - document.attribute_count)
        if not dropped_paths:
            fresh._pattern_paths = dict(self._pattern_paths)
        return fresh

    def canonical_state(self) -> Dict[str, Dict[int, Tuple[Tuple[int, str], ...]]]:
        """A value-comparable snapshot: path -> doc key -> (node id, path)
        tuples.  Used by the maintenance equivalence tests to compare an
        incrementally maintained summary against a full rebuild."""
        return {path: {key: tuple((node.node_id, node.simple_path())
                                  for node in nodes)
                       for key, nodes in per_doc.items()}
                for path, per_doc in self._doc_nodes.items()}

    # ------------------------------------------------------------------
    # Path lookups
    # ------------------------------------------------------------------
    @property
    def distinct_paths(self) -> List[str]:
        """The distinct simple paths, sorted."""
        return sorted(self._doc_nodes)

    @property
    def path_count(self) -> int:
        return len(self._doc_nodes)

    def has_path(self, path: str) -> bool:
        return path in self._doc_nodes

    def nodes_for_path(self, path: str,
                       doc_id: Optional[int] = None) -> List[XmlNode]:
        """Nodes with simple path ``path`` (in one document, or all).

        The returned list must be treated as read-only.
        """
        per_doc = self._doc_nodes.get(path)
        if per_doc is None:
            return _NO_NODES
        if doc_id is not None:
            return per_doc.get(doc_id, _NO_NODES)
        merged: List[XmlNode] = []
        for nodes in per_doc.values():
            merged.extend(nodes)
        return merged

    def doc_nodes_for_path(self, path: str) -> Dict[int, List[XmlNode]]:
        """The per-document node lists for ``path`` (read-only)."""
        return self._doc_nodes.get(path, {})

    # ------------------------------------------------------------------
    # Pattern lookups
    # ------------------------------------------------------------------
    def paths_matching(self, pattern: PathPattern) -> Tuple[str, ...]:
        """The distinct paths matched by ``pattern`` (memoized)."""
        cached = self._pattern_paths.get(pattern)
        if cached is None:
            cached = tuple(path for path in self._doc_nodes
                           if pattern.matches(path))
            self._pattern_paths[pattern] = cached
        return cached

    def nodes_for_pattern(self, pattern: PathPattern,
                          doc_id: Optional[int] = None,
                          ordered: bool = False) -> List[XmlNode]:
        """Nodes matched by ``pattern`` (in one document, or all).

        With ``ordered=True`` the result is in document order -- nodes
        sorted by ``(doc key, node id)`` -- even when the pattern matches
        several distinct paths; the per-path lists are already in
        document order, so the multi-path case is a k-way node-id merge
        rather than a sort.  This is what lets compiled lookups serve
        ordered extraction.  The default keeps the cheaper
        grouped-by-path concatenation for node-set consumers.

        The returned list must be treated as read-only.
        """
        paths = self.paths_matching(pattern)
        if not paths:
            return _NO_NODES
        if len(paths) == 1:
            return self.nodes_for_path(paths[0], doc_id)
        if ordered:
            return self._merged_ordered(paths, doc_id)
        merged: List[XmlNode] = []
        for path in paths:
            nodes = self.nodes_for_path(path, doc_id)
            if nodes:
                merged.extend(nodes)
        return merged

    def _merged_ordered(self, paths: Tuple[str, ...],
                        doc_id: Optional[int]) -> List[XmlNode]:
        """K-way merge of the per-path node lists into document order.

        Node ids are pre-order positions within one document, so within a
        document ``node_id`` *is* document order; across documents the
        merge proceeds document by document in key order.
        """
        if doc_id is not None:
            doc_keys: Iterable[int] = (doc_id,)
        else:
            keys: Set[int] = set()
            for path in paths:
                keys.update(self._doc_nodes[path])
            doc_keys = sorted(keys)
        merged: List[XmlNode] = []
        for key in doc_keys:
            runs = [per_doc[key] for per_doc in
                    (self._doc_nodes[path] for path in paths)
                    if key in per_doc]
            if len(runs) == 1:
                merged.extend(runs[0])
            elif runs:
                merged.extend(heapq.merge(*runs, key=lambda node: node.node_id))
        return merged

    def has_match(self, pattern: PathPattern,
                  doc_id: Optional[int] = None) -> bool:
        """Existence test: does any node match ``pattern`` (in ``doc_id``)?"""
        paths = self.paths_matching(pattern)
        if doc_id is None:
            return bool(paths)
        return any(doc_id in self._doc_nodes[path] for path in paths)

    def document_ids_for_pattern(self, pattern: PathPattern) -> Set[int]:
        """The document keys containing at least one matching node."""
        ids: Set[int] = set()
        for path in self.paths_matching(pattern):
            ids.update(self._doc_nodes[path])
        return ids

    def node_count_for_pattern(self, pattern: PathPattern) -> int:
        """Number of nodes matched by ``pattern`` across all documents."""
        total = 0
        for path in self.paths_matching(pattern):
            for nodes in self._doc_nodes[path].values():
                total += len(nodes)
        return total

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (f"path summary: {self.document_count} document(s), "
                f"{self.path_count} distinct paths, "
                f"{self.total_element_count} elements, "
                f"{self.total_attribute_count} attributes")


@builder
def build_path_summary(documents: Iterable[DocumentNode],
                       renumber: bool = False) -> PathSummary:
    """Build a :class:`PathSummary` over ``documents`` in one pass.

    With ``renumber=True`` the documents are keyed by their position in
    the iterable instead of their ``doc_id`` -- used when summarizing
    documents that have not been added to a collection (whose ids may
    all still be ``-1``).
    """
    summary = PathSummary()
    for position, document in enumerate(documents):
        summary.add_document(document,
                             doc_key=position if renumber else None)
    return summary
