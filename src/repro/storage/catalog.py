"""The system catalog: physical and virtual index definitions.

The paper's key mechanism is that the optimizer can be asked to plan
with *virtual* indexes -- index definitions that exist in the catalog
and in the optimizer's data structures but have no physical data.  The
catalog therefore keeps two sets of definitions:

* **physical indexes**, created with
  :meth:`Catalog.add_index` and materialized by the executor;
* **virtual indexes**, installed temporarily for one optimizer call
  (Evaluate Indexes mode) or permanently for candidate enumeration
  (the ``//*`` universal index of Enumerate Indexes mode).

The :class:`VirtualConfiguration` context manager mirrors how the
client-side advisor brackets each Evaluate Indexes call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.index.definition import IndexDefinition


class CatalogError(Exception):
    """Raised on invalid catalog operations (duplicate names, unknown indexes)."""


#: A database data signature: sorted (collection name, version) pairs.
DataSignature = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class ConfigurationProvenance:
    """Where the live physical configuration came from.

    Recorded by the online tuning controller whenever it (re-)advises,
    so any consumer -- the drift detector above all -- can ask "which
    workload and which data state was this configuration chosen for?"
    without the controller having to stay alive.  The catalog treats the
    workload snapshot as opaque (it is a
    :class:`repro.tuning.monitor.WorkloadSnapshot`; the storage layer
    must not depend on the tuning layer).
    """

    #: Keys of the index definitions the advising pass recommended.
    index_keys: Tuple[Tuple[str, str], ...]
    #: Database signature at advising time.
    data_signature: DataSignature
    #: The monitor step the advised-on workload snapshot was taken at.
    advised_step: int
    #: The advised-on workload snapshot (opaque to the catalog).
    workload_snapshot: object = None


class Catalog:
    """Holds index definitions and answers applicability queries.

    The catalog also tracks *physical-structure staleness*: for every
    materialized physical index, the data signature its structure was
    last maintained to (:meth:`mark_index_maintained`).  The executor
    records a signature after each build or delta catch-up, so any
    consumer can ask which structures lag the current database state
    (:meth:`stale_physical_indexes`) without touching the structures
    themselves.
    """

    def __init__(self) -> None:
        self._physical: Dict[str, IndexDefinition] = {}
        self._virtual: Dict[str, IndexDefinition] = {}
        self._maintained_signatures: Dict[str, DataSignature] = {}
        self._provenance: Optional[ConfigurationProvenance] = None

    # ------------------------------------------------------------------
    # Configuration provenance
    # ------------------------------------------------------------------
    def record_configuration_provenance(
            self, provenance: Optional[ConfigurationProvenance]) -> None:
        """Remember which workload snapshot / data state the current
        physical configuration was advised on (online tuning);
        ``None`` clears the record."""
        self._provenance = provenance

    @property
    def configuration_provenance(self) -> Optional[ConfigurationProvenance]:
        """The last recorded advising provenance, or ``None`` when the
        configuration was never produced by an advising pass."""
        return self._provenance

    # ------------------------------------------------------------------
    # Physical indexes
    # ------------------------------------------------------------------
    def add_index(self, definition: IndexDefinition) -> IndexDefinition:
        """Register a physical index definition."""
        if definition.name in self._physical:
            raise CatalogError(f"index {definition.name!r} already exists")
        if definition.is_virtual:
            raise CatalogError(
                f"index {definition.name!r} is virtual; use add_virtual_index()")
        self._physical[definition.name] = definition
        return definition

    def drop_index(self, name: str) -> None:
        if name not in self._physical:
            raise CatalogError(f"unknown index {name!r}")
        del self._physical[name]
        self._maintained_signatures.pop(name, None)

    # ------------------------------------------------------------------
    # Physical-structure staleness
    # ------------------------------------------------------------------
    def mark_index_maintained(self, name: str, signature: DataSignature) -> None:
        """Record that ``name``'s physical structure reflects ``signature``."""
        if name not in self._physical:
            raise CatalogError(f"unknown index {name!r}")
        self._maintained_signatures[name] = signature

    def index_maintained_signature(self, name: str) -> Optional[DataSignature]:
        """The signature ``name`` was last maintained to, or ``None`` when
        its structure has never been built/maintained."""
        return self._maintained_signatures.get(name)

    def stale_physical_indexes(self, signature: DataSignature) -> List[str]:
        """Names of physical indexes whose structures lag ``signature``."""
        return [name for name in self._physical
                if self._maintained_signatures.get(name) != signature]

    def has_index(self, name: str) -> bool:
        return name in self._physical or name in self._virtual

    def index(self, name: str) -> IndexDefinition:
        if name in self._physical:
            return self._physical[name]
        if name in self._virtual:
            return self._virtual[name]
        raise CatalogError(f"unknown index {name!r}")

    @property
    def physical_indexes(self) -> List[IndexDefinition]:
        return list(self._physical.values())

    # ------------------------------------------------------------------
    # Virtual indexes
    # ------------------------------------------------------------------
    def add_virtual_index(self, definition: IndexDefinition) -> IndexDefinition:
        """Register a virtual index (catalog-only, no data)."""
        virtual = definition if definition.is_virtual else definition.as_virtual()
        if virtual.name in self._virtual or virtual.name in self._physical:
            raise CatalogError(f"index {virtual.name!r} already exists")
        self._virtual[virtual.name] = virtual
        return virtual

    def clear_virtual_indexes(self) -> None:
        self._virtual.clear()

    @property
    def virtual_indexes(self) -> List[IndexDefinition]:
        return list(self._virtual.values())

    # ------------------------------------------------------------------
    # Combined views
    # ------------------------------------------------------------------
    @property
    def all_indexes(self) -> List[IndexDefinition]:
        """Physical indexes first, then virtual ones."""
        return list(self._physical.values()) + list(self._virtual.values())

    def __len__(self) -> int:
        return len(self._physical) + len(self._virtual)

    def __iter__(self) -> Iterator[IndexDefinition]:
        return iter(self.all_indexes)

    # ------------------------------------------------------------------
    def virtual_configuration(self, definitions: Iterable[IndexDefinition],
                              include_physical: bool = True) -> "VirtualConfiguration":
        """Context manager that installs ``definitions`` as virtual indexes
        for the duration of a ``with`` block (Evaluate Indexes mode).

        When ``include_physical`` is False, physical indexes are hidden for
        the duration of the block as well, so the optimizer sees *only*
        the hypothetical configuration -- that is what the advisor wants
        when comparing candidate configurations from a clean slate.
        """
        return VirtualConfiguration(self, list(definitions), include_physical)


class VirtualConfiguration:
    """Context manager used by the Evaluate Indexes optimizer mode."""

    def __init__(self, catalog: Catalog, definitions: List[IndexDefinition],
                 include_physical: bool) -> None:
        self._catalog = catalog
        self._definitions = definitions
        self._include_physical = include_physical
        self._saved_virtual: Dict[str, IndexDefinition] = {}
        self._saved_physical: Dict[str, IndexDefinition] = {}

    def __enter__(self) -> Catalog:
        self._saved_virtual = dict(self._catalog._virtual)
        self._catalog._virtual = {}
        if not self._include_physical:
            self._saved_physical = dict(self._catalog._physical)
            self._catalog._physical = {}
        used_names = set(self._catalog._physical)
        for definition in self._definitions:
            virtual = definition.as_virtual()
            name = virtual.name
            suffix = 1
            while name in used_names or name in self._catalog._virtual:
                suffix += 1
                name = f"{virtual.name}_{suffix}"
            if name != virtual.name:
                virtual = virtual.renamed(name)
            self._catalog._virtual[virtual.name] = virtual
        return self._catalog

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._catalog._virtual = self._saved_virtual
        if not self._include_physical:
            self._catalog._physical = self._saved_physical
