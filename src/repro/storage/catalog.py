"""The system catalog: physical and virtual index definitions.

The paper's key mechanism is that the optimizer can be asked to plan
with *virtual* indexes -- index definitions that exist in the catalog
and in the optimizer's data structures but have no physical data.  The
catalog therefore keeps two sets of definitions:

* **physical indexes**, created with
  :meth:`Catalog.add_index` and materialized by the executor;
* **virtual indexes**, installed temporarily for one optimizer call
  (Evaluate Indexes mode) or permanently for candidate enumeration
  (the ``//*`` universal index of Enumerate Indexes mode).

The :class:`VirtualConfiguration` context manager mirrors how the
client-side advisor brackets each Evaluate Indexes call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.index.definition import IndexDefinition


class CatalogError(Exception):
    """Raised on invalid catalog operations (duplicate names, unknown indexes)."""


#: A database data signature: sorted (collection name, version) pairs.
DataSignature = Tuple[Tuple[str, int], ...]

#: An index definition's identity: (pattern text, value type name).
IndexKey = Tuple[str, str]


@dataclass(frozen=True)
class PendingBuild:
    """A build the tuning loop still owes: deferred past a budget or
    parked after a rolled-back plan.  Recorded in the catalog so a fresh
    controller on the same database resumes it (restart-idempotent)."""

    definition: "IndexDefinition"
    size_bytes: float
    reason: str = ""

    @property
    def key(self) -> IndexKey:
        return self.definition.key


@dataclass(frozen=True)
class BuildFailureRecord:
    """One definition's build-failure history, for bounded retry."""

    definition: "IndexDefinition"
    attempts: int
    #: Logical monitor step before which the build must not be retried.
    next_retry_step: int
    last_error: str = ""

    @property
    def key(self) -> IndexKey:
        return self.definition.key


@dataclass(frozen=True)
class ConfigurationProvenance:
    """Where the live physical configuration came from.

    Recorded by the online tuning controller whenever it (re-)advises,
    so any consumer -- the drift detector above all -- can ask "which
    workload and which data state was this configuration chosen for?"
    without the controller having to stay alive.  The catalog treats the
    workload snapshot as opaque (it is a
    :class:`repro.tuning.monitor.WorkloadSnapshot`; the storage layer
    must not depend on the tuning layer).
    """

    #: Keys of the index definitions the advising pass recommended.
    index_keys: Tuple[Tuple[str, str], ...]
    #: Database signature at advising time.
    data_signature: DataSignature
    #: The monitor step the advised-on workload snapshot was taken at.
    advised_step: int
    #: The advised-on workload snapshot (opaque to the catalog).
    workload_snapshot: object = None


class Catalog:
    """Holds index definitions and answers applicability queries.

    The catalog also tracks *physical-structure staleness*: for every
    materialized physical index, the data signature its structure was
    last maintained to (:meth:`mark_index_maintained`).  The executor
    records a signature after each build or delta catch-up, so any
    consumer can ask which structures lag the current database state
    (:meth:`stale_physical_indexes`) without touching the structures
    themselves.
    """

    def __init__(self) -> None:
        self._physical: Dict[str, IndexDefinition] = {}
        self._virtual: Dict[str, IndexDefinition] = {}
        self._maintained_signatures: Dict[str, DataSignature] = {}
        self._provenance: Optional[ConfigurationProvenance] = None
        # Failure-containment state (durable: lives with the database,
        # not with any controller or executor instance).
        self._pending_builds: Dict[IndexKey, PendingBuild] = {}
        self._build_failures: Dict[IndexKey, BuildFailureRecord] = {}
        self._quarantined: Dict[IndexKey, str] = {}
        self._unusable: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Configuration provenance
    # ------------------------------------------------------------------
    def record_configuration_provenance(
            self, provenance: Optional[ConfigurationProvenance]) -> None:
        """Remember which workload snapshot / data state the current
        physical configuration was advised on (online tuning);
        ``None`` clears the record."""
        self._provenance = provenance

    @property
    def configuration_provenance(self) -> Optional[ConfigurationProvenance]:
        """The last recorded advising provenance, or ``None`` when the
        configuration was never produced by an advising pass."""
        return self._provenance

    # ------------------------------------------------------------------
    # Physical indexes
    # ------------------------------------------------------------------
    def add_index(self, definition: IndexDefinition) -> IndexDefinition:
        """Register a physical index definition."""
        if definition.name in self._physical:
            raise CatalogError(f"index {definition.name!r} already exists")
        if definition.is_virtual:
            raise CatalogError(
                f"index {definition.name!r} is virtual; use add_virtual_index()")
        self._physical[definition.name] = definition
        return definition

    def drop_index(self, name: str) -> None:
        if name not in self._physical:
            raise CatalogError(f"unknown index {name!r}")
        del self._physical[name]
        self._maintained_signatures.pop(name, None)
        self._unusable.pop(name, None)

    # ------------------------------------------------------------------
    # Physical-structure staleness
    # ------------------------------------------------------------------
    def mark_index_maintained(self, name: str, signature: DataSignature) -> None:
        """Record that ``name``'s physical structure reflects ``signature``."""
        if name not in self._physical:
            raise CatalogError(f"unknown index {name!r}")
        self._maintained_signatures[name] = signature

    def index_maintained_signature(self, name: str) -> Optional[DataSignature]:
        """The signature ``name`` was last maintained to, or ``None`` when
        its structure has never been built/maintained."""
        return self._maintained_signatures.get(name)

    def stale_physical_indexes(self, signature: DataSignature) -> List[str]:
        """Names of physical indexes whose structures lag ``signature``."""
        return [name for name in self._physical
                if self._maintained_signatures.get(name) != signature]

    def has_index(self, name: str) -> bool:
        return name in self._physical or name in self._virtual

    def index(self, name: str) -> IndexDefinition:
        if name in self._physical:
            return self._physical[name]
        if name in self._virtual:
            return self._virtual[name]
        raise CatalogError(f"unknown index {name!r}")

    @property
    def physical_indexes(self) -> List[IndexDefinition]:
        return list(self._physical.values())

    # ------------------------------------------------------------------
    # Degraded-mode state (unusable physical structures)
    # ------------------------------------------------------------------
    def mark_index_unusable(self, name: str, reason: str) -> None:
        """Record that ``name``'s physical structure cannot be served
        (probe raised, journal catch-up and rebuild both failed).  The
        executor plans around unusable indexes via the summary-scan
        path until :meth:`clear_index_unusable` (a successful repair)."""
        if name not in self._physical:
            raise CatalogError(f"unknown index {name!r}")
        self._unusable[name] = reason
        self._maintained_signatures.pop(name, None)

    def clear_index_unusable(self, name: str) -> None:
        self._unusable.pop(name, None)

    def index_usable(self, name: str) -> bool:
        return name not in self._unusable

    @property
    def unusable_indexes(self) -> Dict[str, str]:
        """Unusable physical index names mapped to their reasons."""
        return dict(self._unusable)

    @property
    def usable_physical_indexes(self) -> List[IndexDefinition]:
        """Physical indexes the optimizer may plan with."""
        return [definition for name, definition in self._physical.items()
                if name not in self._unusable]

    # ------------------------------------------------------------------
    # Durable tuning state (pending builds, failures, quarantine)
    # ------------------------------------------------------------------
    def record_pending_builds(self, pending: Iterable[PendingBuild]) -> None:
        """Replace the set of builds the tuning loop still owes."""
        self._pending_builds = {record.key: record for record in pending}

    def clear_pending_build(self, key: IndexKey) -> None:
        self._pending_builds.pop(key, None)

    @property
    def pending_builds(self) -> List[PendingBuild]:
        return list(self._pending_builds.values())

    def record_build_failure(self, record: BuildFailureRecord) -> None:
        self._build_failures[record.key] = record

    def build_failure(self, key: IndexKey) -> Optional[BuildFailureRecord]:
        return self._build_failures.get(key)

    def clear_build_failure(self, key: IndexKey) -> None:
        self._build_failures.pop(key, None)

    def quarantine_index(self, definition: "IndexDefinition",
                         reason: str) -> None:
        """Exclude ``definition`` from advising and planning: it failed
        to build repeatedly and re-planning it would loop forever."""
        self._quarantined[definition.key] = reason
        self._pending_builds.pop(definition.key, None)
        self._build_failures.pop(definition.key, None)

    def is_quarantined(self, key: IndexKey) -> bool:
        return key in self._quarantined

    def clear_quarantine(self, key: IndexKey) -> None:
        self._quarantined.pop(key, None)

    @property
    def quarantined_keys(self) -> List[IndexKey]:
        return sorted(self._quarantined)

    def quarantine_reason(self, key: IndexKey) -> Optional[str]:
        return self._quarantined.get(key)

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def consistency_errors(self) -> List[str]:
        """Internal cross-references that must always hold; the chaos
        tests assert this is empty after every step."""
        errors: List[str] = []
        physical_keys = {definition.key for definition in
                         self._physical.values()}
        for name in sorted(self._unusable):
            if name not in self._physical:
                errors.append(f"unusable mark for unknown index {name!r}")
        for name in sorted(self._maintained_signatures):
            if name not in self._physical:
                errors.append(f"maintained signature for unknown index {name!r}")
        for key in sorted(self._quarantined):
            if key in physical_keys:
                errors.append(f"quarantined definition {key!r} is physical")
            if key in self._pending_builds:
                errors.append(f"quarantined definition {key!r} is pending")
        for key in sorted(self._pending_builds):
            if key in physical_keys:
                errors.append(f"pending build {key!r} already physical")
        return errors

    # ------------------------------------------------------------------
    # Virtual indexes
    # ------------------------------------------------------------------
    def add_virtual_index(self, definition: IndexDefinition) -> IndexDefinition:
        """Register a virtual index (catalog-only, no data)."""
        virtual = definition if definition.is_virtual else definition.as_virtual()
        if virtual.name in self._virtual or virtual.name in self._physical:
            raise CatalogError(f"index {virtual.name!r} already exists")
        self._virtual[virtual.name] = virtual
        return virtual

    def clear_virtual_indexes(self) -> None:
        self._virtual.clear()

    @property
    def virtual_indexes(self) -> List[IndexDefinition]:
        return list(self._virtual.values())

    # ------------------------------------------------------------------
    # Combined views
    # ------------------------------------------------------------------
    @property
    def all_indexes(self) -> List[IndexDefinition]:
        """Physical indexes first, then virtual ones."""
        return list(self._physical.values()) + list(self._virtual.values())

    def __len__(self) -> int:
        return len(self._physical) + len(self._virtual)

    def __iter__(self) -> Iterator[IndexDefinition]:
        return iter(self.all_indexes)

    # ------------------------------------------------------------------
    def virtual_configuration(self, definitions: Iterable[IndexDefinition],
                              include_physical: bool = True) -> "VirtualConfiguration":
        """Context manager that installs ``definitions`` as virtual indexes
        for the duration of a ``with`` block (Evaluate Indexes mode).

        When ``include_physical`` is False, physical indexes are hidden for
        the duration of the block as well, so the optimizer sees *only*
        the hypothetical configuration -- that is what the advisor wants
        when comparing candidate configurations from a clean slate.
        """
        return VirtualConfiguration(self, list(definitions), include_physical)


class VirtualConfiguration:
    """Context manager used by the Evaluate Indexes optimizer mode."""

    def __init__(self, catalog: Catalog, definitions: List[IndexDefinition],
                 include_physical: bool) -> None:
        self._catalog = catalog
        self._definitions = definitions
        self._include_physical = include_physical
        self._saved_virtual: Dict[str, IndexDefinition] = {}
        self._saved_physical: Dict[str, IndexDefinition] = {}

    def __enter__(self) -> Catalog:
        self._saved_virtual = dict(self._catalog._virtual)
        self._catalog._virtual = {}
        if not self._include_physical:
            self._saved_physical = dict(self._catalog._physical)
            self._catalog._physical = {}
        used_names = set(self._catalog._physical)
        for definition in self._definitions:
            virtual = definition.as_virtual()
            name = virtual.name
            suffix = 1
            while name in used_names or name in self._catalog._virtual:
                suffix += 1
                name = f"{virtual.name}_{suffix}"
            if name != virtual.name:
                virtual = virtual.renamed(name)
            self._catalog._virtual[virtual.name] = virtual
        return self._catalog

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._catalog._virtual = self._saved_virtual
        if not self._include_physical:
            self._catalog._physical = self._saved_physical
