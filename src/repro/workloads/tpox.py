"""TPoX-style transaction-processing database, queries, and updates.

TPoX [5] models a financial (brokerage) application over FIXML messages:
many small documents in three collections -- orders, securities, and
customer accounts -- queried by selective SQL/XML lookups and modified
by a substantial update stream.  For the advisor the salient properties
are (a) value-selective predicates on attributes, (b) several distinct
document schemas in one database, and (c) an update-heavy statement mix
that makes index maintenance cost matter (experiment E6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.storage.document_store import XmlDatabase
from repro.xmldb.nodes import DocumentNode, build_document
from repro.xquery.model import Workload, WorkloadStatement

_CURRENCIES = ["USD", "EUR", "JPY", "CAD", "GBP"]
_SECTORS = ["Technology", "Energy", "Finance", "Healthcare", "Utilities"]
_ORDER_SIDES = ["1", "2"]  # FIX: 1 = buy, 2 = sell
_ORDER_TYPES = ["1", "2", "3"]  # market, limit, stop
_COUNTRIES = ["US", "CA", "DE", "JP", "BR", "EG"]


@dataclass
class TpoxConfig:
    """Scaling knobs for the TPoX-style generator."""

    scale: float = 0.05
    seed: int = 7
    orders: Optional[int] = None
    securities: Optional[int] = None
    customers: Optional[int] = None

    def order_count(self) -> int:
        if self.orders is not None:
            return max(1, self.orders)
        return max(20, int(round(600 * self.scale)))

    def security_count(self) -> int:
        if self.securities is not None:
            return max(1, self.securities)
        return max(10, int(round(200 * self.scale)))

    def customer_count(self) -> int:
        if self.customers is not None:
            return max(1, self.customers)
        return max(10, int(round(150 * self.scale)))


# ----------------------------------------------------------------------
# Data generation
# ----------------------------------------------------------------------
def generate_tpox_database(config: Optional[TpoxConfig] = None,
                           database_name: str = "tpox",
                           use_incremental_maintenance: bool = True) -> XmlDatabase:
    """Generate the three TPoX-style collections: order, security, custacc.

    ``use_incremental_maintenance`` is forwarded to the database; the
    maintenance benchmarks build a full-rebuild twin with ``False``.
    """
    config = config or TpoxConfig()
    rng = random.Random(config.seed)
    database = XmlDatabase(database_name,
                           use_incremental_maintenance=use_incremental_maintenance)

    orders = database.create_collection("order")
    symbols = [f"SYM{i:04d}" for i in range(config.security_count())]
    for order_index in range(config.order_count()):
        orders.add_document(_generate_order(rng, order_index, symbols,
                                            config.customer_count()))

    securities = database.create_collection("security")
    for security_index, symbol in enumerate(symbols):
        securities.add_document(_generate_security(rng, security_index, symbol))

    customers = database.create_collection("custacc")
    for customer_index in range(config.customer_count()):
        customers.add_document(_generate_customer(rng, customer_index))
    return database


def _generate_order(rng: random.Random, order_index: int,
                    symbols: Sequence[str], customer_count: int) -> DocumentNode:
    doc, fixml = build_document("FIXML", uri=f"order{order_index}.xml")
    order = fixml.add_element("Order", attributes={
        "ID": f"103{order_index:06d}",
        "Side": rng.choice(_ORDER_SIDES),
        "TrdDt": _random_date(rng),
        "Acct": f"{rng.randint(0, customer_count - 1):07d}",
        "Typ": rng.choice(_ORDER_TYPES),
    })
    order.add_element("Instrmt", attributes={
        "Sym": rng.choice(symbols),
        "ID": f"{rng.randint(100000000, 999999999)}",
        "Exch": rng.choice(["NYSE", "NASDAQ", "TSE", "LSE"]),
    })
    order.add_element("OrdQty", attributes={"Qty": str(rng.randint(10, 5000))})
    order.add_element("Pxs", attributes={"Px": f"{rng.uniform(1, 900):.2f}",
                                         "Ccy": rng.choice(_CURRENCIES)})
    doc.assign_node_ids()
    return doc


def _generate_security(rng: random.Random, security_index: int,
                       symbol: str) -> DocumentNode:
    doc, security = build_document("Security", uri=f"security{security_index}.xml")
    security.add_element("Symbol", symbol)
    security.add_element("Name", f"Company {security_index}")
    security.add_element("SecurityType", rng.choice(["Stock", "Bond", "Mutual Fund"]))
    security.add_element("Sector", rng.choice(_SECTORS))
    security_info = security.add_element("SecurityInformation")
    security_info.add_element("PE", f"{rng.uniform(4, 60):.1f}")
    security_info.add_element("Yield", f"{rng.uniform(0, 9):.2f}")
    price = security.add_element("Price")
    price.add_element("LastTrade", f"{rng.uniform(1, 900):.2f}")
    price.add_element("Ask", f"{rng.uniform(1, 900):.2f}")
    price.add_element("Bid", f"{rng.uniform(1, 900):.2f}")
    doc.assign_node_ids()
    return doc


def _generate_customer(rng: random.Random, customer_index: int) -> DocumentNode:
    doc, customer = build_document("Customer", uri=f"custacc{customer_index}.xml")
    customer.set_attribute("id", f"{customer_index:07d}")
    name = customer.add_element("Name")
    name.add_element("FirstName", f"First{customer_index}")
    name.add_element("LastName", f"Last{customer_index}")
    customer.add_element("CountryOfResidence", rng.choice(_COUNTRIES))
    customer.add_element("PremiumCustomer", rng.choice(["true", "false"]))
    accounts = customer.add_element("Accounts")
    for account_index in range(rng.randint(1, 3)):
        account = accounts.add_element("Account", attributes={
            "id": f"{customer_index:05d}{account_index:02d}",
            "balance": f"{rng.uniform(100, 2000000):.2f}",
        })
        account.add_element("Currency", rng.choice(_CURRENCIES))
        account.add_element("OpeningDate", _random_date(rng))
        positions = account.add_element("Positions")
        for _ in range(rng.randint(0, 4)):
            position = positions.add_element("Position")
            position.add_element("Symbol", f"SYM{rng.randint(0, 199):04d}")
            position.add_element("Quantity", str(rng.randint(1, 10000)))
    doc.assign_node_ids()
    return doc


def _random_date(rng: random.Random) -> str:
    return f"{rng.randint(2004, 2007)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"


# ----------------------------------------------------------------------
# Query and update workloads
# ----------------------------------------------------------------------
def tpox_query_workload(name: str = "tpox-queries") -> Workload:
    """The read side of the TPoX-style workload (SQL/XML + XQuery)."""
    workload = Workload(name=name)
    statements: List[Tuple[str, float]] = [
        # get_order: look up an order by id.
        ('SELECT 1 FROM "order" WHERE XMLEXISTS('
         '\'$d/FIXML/Order[@ID = "103000042"]\' PASSING doc AS "d")', 5.0),
        # Orders for one account (selective attribute equality).
        ('SELECT 1 FROM "order" WHERE XMLEXISTS('
         '\'$d/FIXML/Order[@Acct = "0000007"]\' PASSING doc AS "d")', 4.0),
        # Sell orders for a symbol.
        ('SELECT 1 FROM "order" WHERE XMLEXISTS('
         '\'$d/FIXML/Order[@Side = "2"][Instrmt/@Sym = "SYM0001"]\' '
         'PASSING doc AS "d")', 3.0),
        # Large orders (range on quantity attribute).
        ('for $o in doc("order.xml")/FIXML/Order '
         'where $o/OrdQty/@Qty > 4500 return $o/Instrmt', 2.0),
        # get_security by symbol.
        ('for $s in doc("security.xml")/Security '
         'where $s/Symbol = "SYM0005" return $s/Price/LastTrade', 4.0),
        # Securities in a sector with a high yield.
        ('for $s in doc("security.xml")/Security '
         'where $s/Sector = "Technology" and $s/SecurityInformation/Yield > 7 '
         'return $s/Name', 2.0),
        # Securities trading above a price.
        ('for $s in doc("security.xml")/Security '
         'where $s/Price/LastTrade > 800 return $s/Symbol', 2.0),
        # Customer by id (attribute on the root element).
        ('SELECT 1 FROM custacc WHERE XMLEXISTS('
         '\'$d/Customer[@id = "0000012"]\' PASSING doc AS "d")', 4.0),
        # Accounts with a very large balance.
        ('for $c in doc("custacc.xml")/Customer '
         'where $c/Accounts/Account/@balance > 1800000 return $c/Name/LastName', 2.0),
        # Premium customers in a country.
        ('for $c in doc("custacc.xml")/Customer '
         'where $c/CountryOfResidence = "DE" and $c/PremiumCustomer = "true" '
         'return $c/Name/LastName', 2.0),
    ]
    for text, frequency in statements:
        workload.add(WorkloadStatement(text=text, frequency=frequency))
    return workload


def tpox_update_statements(frequency: float = 1.0) -> List[WorkloadStatement]:
    """The write side: order inserts/deletes and account value updates.

    Expressed in the XQuery Update Facility subset the normalizer
    understands; each statement carries the given frequency so callers
    can dial the update ratio up and down (experiment E6).
    """
    updates = [
        'insert node <Order ID="999000001" Side="1"><Instrmt Sym="SYM0002"/>'
        '<OrdQty Qty="100"/></Order> into /FIXML',
        'delete node /FIXML/Order[@ID = "103000017"]',
        'replace value of node /FIXML/Order/OrdQty/@Qty with "250"',
        'replace value of node /Customer/Accounts/Account/@balance with "50000.00"',
        'insert node <Position><Symbol>SYM0009</Symbol><Quantity>10</Quantity>'
        '</Position> into /Customer/Accounts/Account/Positions',
        'replace value of node /Security/Price/LastTrade with "123.45"',
    ]
    return [WorkloadStatement(text=text, frequency=frequency) for text in updates]


def tpox_workload(update_ratio: float = 0.3, name: str = "tpox") -> Workload:
    """The full TPoX-style workload with a configurable update share.

    ``update_ratio`` is the fraction of the workload's total statement
    frequency carried by update statements (0.0 = read-only, 0.9 = very
    update-heavy).  TPoX itself runs roughly 30 % updates.
    """
    if not 0.0 <= update_ratio < 1.0:
        raise ValueError("update_ratio must be in [0, 1)")
    queries = tpox_query_workload(name=name)
    if update_ratio <= 0.0:
        return queries
    query_frequency = queries.total_frequency
    update_statements = tpox_update_statements()
    # Choose the per-update frequency so updates carry the requested share.
    target_update_frequency = query_frequency * update_ratio / (1.0 - update_ratio)
    per_statement = target_update_frequency / len(update_statements)
    workload = Workload(name=name)
    for statement in queries:
        workload.add(WorkloadStatement(text=statement.text,
                                       frequency=statement.frequency,
                                       language=statement.language))
    for statement in update_statements:
        workload.add(WorkloadStatement(text=statement.text, frequency=per_statement))
    return workload
