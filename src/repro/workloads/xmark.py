"""XMark-style auction database generator and query workload.

The XMark benchmark [7] models an internet auction site: a single large
document rooted at ``<site>`` with six geographic regions of items,
registered people with profiles, open and closed auctions, and a
category hierarchy.  This generator reproduces the schema shape and the
value distributions that matter to an index advisor:

* items spread unevenly across regions (some regions have many more
  items, so generalizing over regions actually pays);
* numeric leaf values (``quantity``, ``price``, ``age``, ``@income``,
  ``current``, ``increase``) with ranges wide enough for selective range
  predicates;
* string leaves (``payment``, ``location``, ``name``, ``city``,
  ``country``, ``creditcard``) with small and large domains;
* attributes used as keys (``@id``, ``@person``, ``@item``,
  ``@category``, ``@income``).

Instead of one giant document we generate many ``<site>`` documents of
moderate size (DB2 pureXML stores one XML value per row, and TPoX-style
many-document layouts are how XML columns are used in practice); the
advisor and optimizer are insensitive to that choice because they only
see path statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.storage.document_store import XmlDatabase
from repro.xmldb.nodes import DocumentNode, ElementNode, build_document
from repro.xquery.model import Workload, WorkloadStatement

#: The six XMark regions, with relative item weights (namerica and europe
#: carry most of the items, as in the original generator).
REGIONS: List[Tuple[str, float]] = [
    ("africa", 0.55),
    ("asia", 1.0),
    ("australia", 0.45),
    ("europe", 2.2),
    ("namerica", 3.0),
    ("samerica", 0.8),
]

_PAYMENTS = ["Creditcard", "Cash", "Money order", "Personal Check"]
_COUNTRIES = ["United States", "Germany", "Egypt", "Japan", "Brazil", "Canada", "France"]
_CITIES = ["Seattle", "Toronto", "Cairo", "Berlin", "Tokyo", "Sao Paulo", "Paris", "Boston"]
_EDUCATIONS = ["High School", "College", "Graduate School", "Other"]
_ITEM_WORDS = ["vintage", "rare", "antique", "modern", "classic", "signed",
               "limited", "original", "restored", "imported"]
_NOUNS = ["lamp", "guitar", "painting", "watch", "camera", "book", "vase",
          "coin", "stamp", "chair"]


@dataclass
class XMarkConfig:
    """Scaling knobs for the XMark-style generator.

    ``scale`` plays the role of XMark's scale factor: the default 0.05
    produces a database of a few hundred documents / tens of thousands of
    nodes, which keeps the test suite fast; benchmarks use larger values.
    """

    scale: float = 0.05
    seed: int = 42
    #: Documents to generate (each is one <site> instance).
    documents: Optional[int] = None
    #: Items per region weight unit per document.
    items_per_region_unit: int = 2
    #: People per document.
    people_per_document: int = 8
    #: Open / closed auctions per document.
    open_auctions_per_document: int = 6
    closed_auctions_per_document: int = 4
    #: Categories per document.
    categories_per_document: int = 4

    def document_count(self) -> int:
        if self.documents is not None:
            return max(1, self.documents)
        return max(4, int(round(200 * self.scale)))


# ----------------------------------------------------------------------
# Data generation
# ----------------------------------------------------------------------
def generate_xmark_database(config: Optional[XMarkConfig] = None,
                            database_name: str = "xmark",
                            use_incremental_maintenance: bool = True) -> XmlDatabase:
    """Generate an XMark-style database with a single ``xmark`` collection.

    ``use_incremental_maintenance`` is forwarded to the database; the
    maintenance benchmarks build a full-rebuild twin with ``False``.
    """
    config = config or XMarkConfig()
    rng = random.Random(config.seed)
    database = XmlDatabase(database_name,
                           use_incremental_maintenance=use_incremental_maintenance)
    collection = database.create_collection("xmark")
    for doc_index in range(config.document_count()):
        collection.add_document(_generate_site_document(rng, config, doc_index))
    return database


def _generate_site_document(rng: random.Random, config: XMarkConfig,
                            doc_index: int) -> DocumentNode:
    doc, site = build_document("site", uri=f"xmark-{doc_index}.xml")
    _generate_regions(rng, config, site, doc_index)
    people = _generate_people(rng, config, site, doc_index)
    items = _collect_item_ids(site)
    _generate_open_auctions(rng, config, site, doc_index, people, items)
    _generate_closed_auctions(rng, config, site, doc_index, people, items)
    _generate_categories(rng, config, site, doc_index)
    doc.assign_node_ids()
    return doc


def _generate_regions(rng: random.Random, config: XMarkConfig,
                      site: ElementNode, doc_index: int) -> None:
    regions = site.add_element("regions")
    for region_name, weight in REGIONS:
        region = regions.add_element(region_name)
        item_count = max(1, int(round(weight * config.items_per_region_unit)))
        for item_index in range(item_count):
            item_id = f"item{doc_index}_{region_name}_{item_index}"
            item = region.add_element("item", attributes={"id": item_id})
            item.add_element("location", rng.choice(_COUNTRIES))
            item.add_element("quantity", str(rng.randint(1, 10)))
            item.add_element(
                "name",
                f"{rng.choice(_ITEM_WORDS)} {rng.choice(_NOUNS)} {item_index}")
            item.add_element("payment", rng.choice(_PAYMENTS))
            item.add_element("price", f"{rng.uniform(5, 500):.2f}")
            description = item.add_element("description")
            description.add_element(
                "text",
                " ".join(rng.choice(_ITEM_WORDS) for _ in range(6)))
            item.add_element("shipping", rng.choice(
                ["Will ship internationally", "Buyer pays fixed shipping charges",
                 "Will ship only within country"]))
            item.add_element("incategory", attributes={
                "category": f"category{rng.randint(0, 9)}"})
            mailbox = item.add_element("mailbox")
            for mail_index in range(rng.randint(0, 2)):
                mail = mailbox.add_element("mail")
                mail.add_element("from", f"person{rng.randint(0, 99)}")
                mail.add_element("date", _random_date(rng))


def _generate_people(rng: random.Random, config: XMarkConfig,
                     site: ElementNode, doc_index: int) -> List[str]:
    people = site.add_element("people")
    person_ids: List[str] = []
    for person_index in range(config.people_per_document):
        person_id = f"person{doc_index}_{person_index}"
        person_ids.append(person_id)
        person = people.add_element("person", attributes={"id": person_id})
        person.add_element("name", f"Person {doc_index} {person_index}")
        person.add_element("emailaddress",
                           f"mailto:person{doc_index}.{person_index}@example.com")
        if rng.random() < 0.7:
            person.add_element("phone", f"+1 ({rng.randint(100, 999)}) "
                                        f"{rng.randint(1000000, 9999999)}")
        address = person.add_element("address")
        address.add_element("street", f"{rng.randint(1, 99)} Main St")
        address.add_element("city", rng.choice(_CITIES))
        address.add_element("country", rng.choice(_COUNTRIES))
        address.add_element("zipcode", str(rng.randint(10000, 99999)))
        profile = person.add_element("profile", attributes={
            "income": f"{rng.uniform(9500, 250000):.2f}"})
        profile.add_element("education", rng.choice(_EDUCATIONS))
        profile.add_element("age", str(rng.randint(18, 90)))
        for _ in range(rng.randint(0, 3)):
            profile.add_element("interest", attributes={
                "category": f"category{rng.randint(0, 9)}"})
        if rng.random() < 0.6:
            person.add_element("creditcard",
                               " ".join(str(rng.randint(1000, 9999)) for _ in range(4)))
    return person_ids


def _collect_item_ids(site: ElementNode) -> List[str]:
    ids: List[str] = []
    regions = site.first_child_element("regions")
    if regions is None:
        return ids
    for region in regions.element_children():
        for item in region.child_elements("item"):
            item_id = item.get_attribute("id")
            if item_id:
                ids.append(item_id)
    return ids


def _generate_open_auctions(rng: random.Random, config: XMarkConfig,
                            site: ElementNode, doc_index: int,
                            people: Sequence[str], items: Sequence[str]) -> None:
    auctions = site.add_element("open_auctions")
    for auction_index in range(config.open_auctions_per_document):
        auction = auctions.add_element("open_auction", attributes={
            "id": f"open_auction{doc_index}_{auction_index}"})
        initial = rng.uniform(1, 200)
        auction.add_element("initial", f"{initial:.2f}")
        current = initial
        for _ in range(rng.randint(1, 5)):
            bidder = auction.add_element("bidder")
            bidder.add_element("date", _random_date(rng))
            increase = rng.uniform(1, 25)
            current += increase
            bidder.add_element("increase", f"{increase:.2f}")
            bidder.add_element("personref", attributes={
                "person": rng.choice(people) if people else "person0"})
        auction.add_element("current", f"{current:.2f}")
        auction.add_element("itemref", attributes={
            "item": rng.choice(items) if items else "item0"})
        auction.add_element("seller", attributes={
            "person": rng.choice(people) if people else "person0"})
        auction.add_element("quantity", str(rng.randint(1, 5)))
        auction.add_element("type", rng.choice(["Regular", "Featured", "Dutch"]))
        interval = auction.add_element("interval")
        interval.add_element("start", _random_date(rng))
        interval.add_element("end", _random_date(rng))


def _generate_closed_auctions(rng: random.Random, config: XMarkConfig,
                              site: ElementNode, doc_index: int,
                              people: Sequence[str], items: Sequence[str]) -> None:
    auctions = site.add_element("closed_auctions")
    for auction_index in range(config.closed_auctions_per_document):
        auction = auctions.add_element("closed_auction")
        auction.add_element("seller", attributes={
            "person": rng.choice(people) if people else "person0"})
        auction.add_element("buyer", attributes={
            "person": rng.choice(people) if people else "person0"})
        auction.add_element("itemref", attributes={
            "item": rng.choice(items) if items else "item0"})
        auction.add_element("price", f"{rng.uniform(5, 800):.2f}")
        auction.add_element("date", _random_date(rng))
        auction.add_element("quantity", str(rng.randint(1, 5)))
        auction.add_element("type", rng.choice(["Regular", "Featured"]))


def _generate_categories(rng: random.Random, config: XMarkConfig,
                         site: ElementNode, doc_index: int) -> None:
    categories = site.add_element("categories")
    for category_index in range(config.categories_per_document):
        category = categories.add_element("category", attributes={
            "id": f"category{category_index}"})
        category.add_element("name", f"Category {category_index}")
        description = category.add_element("description")
        description.add_element("text", " ".join(
            rng.choice(_ITEM_WORDS) for _ in range(4)))


def _random_date(rng: random.Random) -> str:
    return f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/{rng.randint(1999, 2007)}"


# ----------------------------------------------------------------------
# Query workloads
# ----------------------------------------------------------------------
def xmark_query_workload(name: str = "xmark-training",
                         include_synthetic: bool = True) -> Workload:
    """The training workload: XMark-style queries plus synthetic additions.

    The statements are XQuery (FLWOR) and SQL/XML, matching the demo's
    mixed-language workloads.  Frequencies model a mild skew: lookup
    queries run more often than analytical ones.
    """
    workload = Workload(name=name)
    statements: List[Tuple[str, float]] = [
        # Q1-style: look up a person by id (attribute equality).
        ('for $p in doc("xmark.xml")/site/people/person '
         'where $p/@id = "person3_1" return $p/name', 4.0),
        # Q5-style: how many sold items had a price above a threshold.
        ('for $c in doc("xmark.xml")/site/closed_auctions/closed_auction '
         'where $c/price >= 400 return $c/price', 2.0),
        # Region-specific item quantity queries (the paper's running example).
        ('for $i in doc("xmark.xml")/site/regions/namerica/item '
         'where $i/quantity > 7 return $i/name', 3.0),
        ('for $i in doc("xmark.xml")/site/regions/africa/item '
         'where $i/quantity > 7 return $i/name', 2.0),
        # Region-specific price query (drives /regions/*/item/* generalization).
        ('for $i in doc("xmark.xml")/site/regions/samerica/item '
         'where $i/price > 350 return $i/name', 2.0),
        # Payment-method lookup in a single region.
        ('for $i in doc("xmark.xml")/site/regions/europe/item '
         'where $i/payment = "Creditcard" return $i/name', 2.0),
        # People with high income (attribute range predicate).
        ('for $p in doc("xmark.xml")/site/people/person '
         'where $p/profile/@income > 200000 return $p/name', 2.0),
        # Q11/Q12-style: people by age.
        ('for $p in doc("xmark.xml")/site/people/person '
         'where $p/profile/age >= 80 return $p/name', 1.0),
        # Open auctions with a high current bid.
        ('for $a in doc("xmark.xml")/site/open_auctions/open_auction '
         'where $a/current > 250 return $a/itemref', 2.0),
        # Bidder increases above a threshold (nested path predicate).
        ('for $a in doc("xmark.xml")/site/open_auctions/open_auction '
         'where $a/bidder/increase > 22 return $a/current', 1.0),
        # SQL/XML: items located in a specific country, any region.
        ('SELECT 1 FROM xmark WHERE XMLEXISTS('
         '\'$d/site/regions/asia/item[location = "Japan"]\' PASSING doc AS "d")', 2.0),
        # SQL/XML: featured open auctions.
        ('SELECT 1 FROM xmark WHERE XMLEXISTS('
         '\'$d/site/open_auctions/open_auction[type = "Featured"]\' '
         'PASSING doc AS "d")', 1.0),
        # Q14-style: descendant text search path (structural predicate).
        ('for $i in doc("xmark.xml")//item where $i/quantity = 1 '
         'return $i/description', 1.0),
        # Closed auction buyers (attribute existence + equality).
        ('for $c in doc("xmark.xml")/site/closed_auctions/closed_auction '
         'where $c/buyer/@person = "person2_0" return $c/price', 2.0),
        # Addresses in a city (string equality deeper in people subtree).
        ('for $p in doc("xmark.xml")/site/people/person '
         'where $p/address/city = "Cairo" return $p/name', 1.0),
    ]
    if include_synthetic:
        statements.extend([
            # Synthetic variations, as the demo adds to the standard queries.
            ('for $i in doc("xmark.xml")/site/regions/australia/item '
             'where $i/quantity > 9 return $i/name', 1.0),
            ('for $i in doc("xmark.xml")/site/regions/asia/item '
             'where $i/price > 450 return $i/name', 1.0),
            ('for $p in doc("xmark.xml")/site/people/person '
             'where $p/address/country = "Germany" return $p/name', 1.0),
            ('for $a in doc("xmark.xml")/site/open_auctions/open_auction '
             'where $a/initial < 5 return $a/current', 1.0),
            ('SELECT 1 FROM xmark WHERE XMLEXISTS('
             '\'$d/site/people/person[creditcard = "1234 5678 9012 3456"]\' '
             'PASSING doc AS "d")', 1.0),
        ])
    for text, frequency in statements:
        workload.add(WorkloadStatement(text=text, frequency=frequency))
    return workload


def xmark_unseen_queries(name: str = "xmark-unseen") -> Workload:
    """Held-out queries: the *same shapes* as the training workload but on
    regions/constants the training workload never mentioned.

    A configuration of query-specific indexes cannot help these; the
    generalized configurations recommended by the advisor can.  Used by
    experiments E4 and E7.
    """
    workload = Workload(name=name)
    statements: List[Tuple[str, float]] = [
        ('for $i in doc("xmark.xml")/site/regions/asia/item '
         'where $i/quantity > 6 return $i/name', 1.0),
        ('for $i in doc("xmark.xml")/site/regions/australia/item '
         'where $i/price > 300 return $i/name', 1.0),
        ('for $i in doc("xmark.xml")/site/regions/samerica/item '
         'where $i/payment = "Cash" return $i/name', 1.0),
        ('for $i in doc("xmark.xml")/site/regions/europe/item '
         'where $i/quantity > 9 return $i/name', 1.0),
        ('for $p in doc("xmark.xml")/site/people/person '
         'where $p/profile/age < 20 return $p/name', 1.0),
        ('for $i in doc("xmark.xml")/site/regions/namerica/item '
         'where $i/price > 480 return $i/name', 1.0),
    ]
    for text, frequency in statements:
        workload.add(WorkloadStatement(text=text, frequency=frequency))
    return workload
