"""Synthetic workload generation over an arbitrary database.

The scalability experiments (E9) need workloads of controllable size
whose predicates actually hit the data.  The generator samples leaf
paths from the database's own path synopsis and fabricates XQuery
statements with equality / range predicates against values drawn from
the observed ranges, so every generated query is indexable and
selectivities are realistic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.storage.document_store import XmlDatabase
from repro.storage.statistics import PathStatistics
from repro.xquery.model import Workload, WorkloadStatement


class SyntheticWorkloadGenerator:
    """Generates random-but-valid query workloads for a database."""

    def __init__(self, database: XmlDatabase, seed: int = 13) -> None:
        self.database = database
        self._rng = random.Random(seed)
        self._leaf_paths = self._collect_leaf_paths()

    # ------------------------------------------------------------------
    def _collect_leaf_paths(self) -> List[PathStatistics]:
        """Paths that carry values (elements with text or attributes)."""
        stats = self.database.statistics
        leaves: List[PathStatistics] = []
        for path_stat in stats.path_stats.values():
            if path_stat.total_value_bytes > 0 and path_stat.distinct_values > 1:
                leaves.append(path_stat)
        leaves.sort(key=lambda s: s.path)
        return leaves

    @property
    def indexable_path_count(self) -> int:
        return len(self._leaf_paths)

    # ------------------------------------------------------------------
    def generate(self, query_count: int, predicates_per_query: int = 1,
                 name: str = "synthetic") -> Workload:
        """Generate ``query_count`` FLWOR queries with random predicates."""
        if not self._leaf_paths:
            raise ValueError("database has no value-carrying paths to query")
        workload = Workload(name=name)
        for _ in range(query_count):
            workload.add(WorkloadStatement(
                text=self._generate_query(predicates_per_query),
                frequency=float(self._rng.randint(1, 4))))
        return workload

    def _generate_query(self, predicates_per_query: int) -> str:
        anchor = self._rng.choice(self._leaf_paths)
        anchor_steps = [s for s in anchor.path.split("/") if s and not s.startswith("@")]
        # Bind the FLWOR variable to the parent of the predicate leaf so the
        # query shape matches hand-written benchmark queries.
        bind_depth = max(1, len(anchor_steps) - 1)
        binding_path = "/" + "/".join(anchor_steps[:bind_depth])
        conditions: List[str] = [self._condition_for(anchor, binding_path)]
        siblings = [stat for stat in self._leaf_paths
                    if stat.path != anchor.path and stat.path.startswith(binding_path + "/")]
        self._rng.shuffle(siblings)
        for extra in siblings[:max(0, predicates_per_query - 1)]:
            conditions.append(self._condition_for(extra, binding_path))
        where_clause = " and ".join(conditions)
        return (f'for $x in doc("synthetic.xml"){binding_path} '
                f'where {where_clause} return $x')

    def _condition_for(self, stat: PathStatistics, binding_path: str) -> str:
        relative = stat.path[len(binding_path):]
        relative = relative.lstrip("/")
        reference = f"$x/{relative}"
        if stat.mostly_numeric and stat.min_value is not None and stat.max_value is not None:
            low, high = stat.min_value, stat.max_value
            if high <= low:
                value = low
            else:
                value = low + self._rng.random() * (high - low)
            operator = self._rng.choice([">", ">=", "<", "<=", "="])
            return f"{reference} {operator} {value:.2f}"
        # String predicate: equality against a plausible value length.
        token = f"value{self._rng.randint(0, max(1, stat.distinct_values - 1))}"
        return f'{reference} = "{token}"'
