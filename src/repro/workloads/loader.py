"""Scenario builders: ready-made (database, workload) pairs.

The examples, benchmarks, and the CLI all need the same handful of
set-ups ("XMark at scale 0.1 with the training workload", "TPoX with a
30% update mix", ...).  Building them in one place keeps those callers
short and guarantees they agree on seeds and scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.storage.document_store import XmlDatabase
from repro.workloads.tpox import TpoxConfig, generate_tpox_database, tpox_workload
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
)
from repro.xquery.model import Workload


@dataclass
class Scenario:
    """A named, reproducible (database, workload) pair."""

    name: str
    description: str
    database: XmlDatabase
    workload: Workload


def _xmark_scenario(scale: float, seed: int = 42) -> Scenario:
    database = generate_xmark_database(XMarkConfig(scale=scale, seed=seed))
    workload = xmark_query_workload()
    return Scenario(name=f"xmark-{scale:g}",
                    description=f"XMark-style auction data at scale {scale:g} "
                                f"with the mixed XQuery/SQL-XML training workload",
                    database=database, workload=workload)


def _tpox_scenario(scale: float, update_ratio: float, seed: int = 7) -> Scenario:
    database = generate_tpox_database(TpoxConfig(scale=scale, seed=seed))
    workload = tpox_workload(update_ratio=update_ratio)
    return Scenario(name=f"tpox-{scale:g}-u{int(update_ratio * 100)}",
                    description=f"TPoX-style brokerage data at scale {scale:g} "
                                f"with {int(update_ratio * 100)}% updates",
                    database=database, workload=workload)


_BUILDERS: Dict[str, Callable[[], Scenario]] = {
    "xmark-small": lambda: _xmark_scenario(scale=0.05),
    "xmark-medium": lambda: _xmark_scenario(scale=0.2),
    # TPoX scenarios run at scale 0.25 (a few hundred small documents):
    # with the collection-scoped cost model a query is no longer charged
    # for scanning the other two collections, so each collection must be
    # large enough that selective indexes beat the routed scans -- at
    # 0.05 the advisor correctly recommends nothing, which makes a poor
    # demonstration.
    "tpox-small": lambda: _tpox_scenario(scale=0.25, update_ratio=0.3),
    "tpox-readonly": lambda: _tpox_scenario(scale=0.25, update_ratio=0.0),
    "tpox-update-heavy": lambda: _tpox_scenario(scale=0.25, update_ratio=0.7),
}


def list_scenarios() -> List[str]:
    """Names accepted by :func:`build_scenario`."""
    return sorted(_BUILDERS)


def build_scenario(name: str) -> Scenario:
    """Build a named scenario; raises ``KeyError`` with the valid names."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; valid names: "
                       f"{', '.join(list_scenarios())}") from None
    return builder()
