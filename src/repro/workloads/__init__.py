"""Benchmark workloads: XMark- and TPoX-style data and query generators.

The paper's demonstration "uses XQuery and SQL/XML queries on XML data
from standard benchmarks such as XMark and TPoX.  The workloads used
consist of the standard benchmark queries augmented with synthetic
queries."  Neither benchmark's original data generator is available
offline, so this package re-implements generators that produce documents
with the same schema shape, value skew, and path diversity:

* :mod:`repro.workloads.xmark` -- auction-site documents (regions /
  items, people / profiles, open and closed auctions, categories) plus a
  20-query XQuery workload modeled on XMark's queries and the demo's
  synthetic additions, and a held-out "unseen" query set for the
  generalization experiments.
* :mod:`repro.workloads.tpox` -- FIXML-style order documents, securities
  and customer accounts, plus a SQL/XML + XQuery transaction-processing
  query mix and an update workload (inserts / deletes / value replaces)
  for the update-cost experiments.
* :mod:`repro.workloads.synthetic` -- random path workloads over an
  arbitrary database, used by the scalability benchmarks.
* :mod:`repro.workloads.loader` -- convenience builders that return
  ``(database, workload)`` pairs by name for the examples, benchmarks
  and the CLI.
"""

from repro.workloads.loader import build_scenario, list_scenarios
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.workloads.tpox import (
    TpoxConfig,
    generate_tpox_database,
    tpox_query_workload,
    tpox_update_statements,
    tpox_workload,
)
from repro.workloads.xmark import (
    XMarkConfig,
    generate_xmark_database,
    xmark_query_workload,
    xmark_unseen_queries,
)

__all__ = [
    "SyntheticWorkloadGenerator",
    "TpoxConfig",
    "XMarkConfig",
    "build_scenario",
    "generate_tpox_database",
    "generate_xmark_database",
    "list_scenarios",
    "tpox_query_workload",
    "tpox_update_statements",
    "tpox_workload",
    "xmark_query_workload",
    "xmark_unseen_queries",
]
